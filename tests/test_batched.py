"""Differential proof that batched execution is a pure acceleration.

The batched engine (:mod:`repro.cpu.batched`) classifies experiment
phases analytically against the golden stream and evicts undecidable
lanes to the very same scalar loops the unbatched campaign runs.  These
tests pin the contract from the issue:

* **workload sweep** - several workloads x transient/permanent produce
  *bit-identical* journal records batched vs scalar;
* **forced divergence** - traps (corrupted instruction words), wild
  jumps (branch-target upsets) and hangs (watchdog stalls) all evict to
  the scalar path and classify identically;
* **grouping invariance** - batch_size 1, 7 and 64 agree, and
  ``run_planned_batch`` of any chunking equals ``run_planned`` one by
  one (the property the pool and the service scheduler lean on);
* **composition** - batched + checkpoints + hybrid synthesis together
  still match the scalar hybrid campaign;
* **content-key neutrality** - experiment keys and campaign specs are
  unchanged by the batched/batch_size knobs, like ``workers=``;
* **backend** - the numpy column backend (when numpy is installed) is
  record-identical to the list/bisect backend, and backend resolution
  honours the explicit flag and the ``ARGUS_REPRO_NUMPY`` env opt-in.
"""

import builtins

import pytest

from repro.cpu.batched import BatchedEngine, resolve_backend
from repro.faults.campaign import Campaign
from repro.faults.model import INTERMITTENT, PERMANENT, TRANSIENT, FaultSpec
from repro.faults.stress import build_stress_program
from repro.runner.journal import result_to_record
from repro.runner.plan import plan_campaign
from repro.runner.pool import execute_plan
from repro.runner.telemetry import event_to_dict
from repro.service.scheduler import CampaignSpec, SpecError
from repro.toolchain import embed_program
from repro.workloads import MESA
from repro.workloads.fuzz import generate_program

SMALL = """
start:  li   r1, 5
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

_EMBEDDED = {}


def _embedded(name):
    """Build each workload's embedded program once per test session."""
    if name not in _EMBEDDED:
        builders = {
            "small": lambda: embed_program(SMALL),
            "stress": build_stress_program,
            "fuzz": lambda: embed_program(generate_program(1234)),
            "mesa": MESA.build_embedded,
        }
        _EMBEDDED[name] = builders[name]()
    return _EMBEDDED[name]


WORKLOADS = ["small", "stress", "fuzz", "mesa"]
DURATIONS = [TRANSIENT, PERMANENT]


def _records(campaign, experiments, duration):
    summary = campaign.run(experiments=experiments, duration=duration)
    return [result_to_record(result) for result in summary.results]


# -- workload sweep --------------------------------------------------------

@pytest.mark.parametrize("duration", DURATIONS)
@pytest.mark.parametrize("name", WORKLOADS)
def test_batched_matches_scalar(name, duration):
    """Same seed, same workload: batched records == scalar records."""
    embedded = _embedded(name)
    scalar = Campaign(embedded=embedded, seed=21)
    batched = Campaign(embedded=embedded, seed=21, batched=True,
                       batch_size=16)
    assert _records(batched, 40, duration) == _records(scalar, 40, duration)
    assert batched.perf["lanes"] > 0
    assert batched.perf["experiments"] == 40


# -- forced divergence: every eviction flavour -----------------------------

#: (label, spec, duration): faults chosen to force trap / wild-jump /
#: hang behaviour so the eviction path (not just synthesis) is exercised.
EVICTION_CASES = [
    ("trap-opcode", FaultSpec("if.inst", 1 << 27), TRANSIENT),
    ("trap-decode", FaultSpec("id.word.fu", 1 << 30), PERMANENT),
    ("wild-jump", FaultSpec("ctl.btarget", 1 << 14), TRANSIENT),
    ("wild-jump-state", FaultSpec("state.pc", 1 << 9, is_state=True),
     TRANSIENT),
    ("hang", FaultSpec("ctl.hang", 1), TRANSIENT),
    ("hang-permanent", FaultSpec("ctl.hang", 1), PERMANENT),
]


@pytest.mark.parametrize("label,spec,duration", EVICTION_CASES,
                         ids=[case[0] for case in EVICTION_CASES])
def test_forced_divergence_evicts_identically(label, spec, duration):
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=3)
    batched = Campaign(embedded=embedded, seed=3, batched=True)
    scalar.golden_trace()
    inject_ats = [5, 57, 203]
    got = batched._run_batch_entries(
        [(spec, duration, at, False) for at in inject_ats])
    want = [scalar._execute(spec, duration, at) for at in inject_ats]
    assert ([result_to_record(r) for r in got]
            == [result_to_record(r) for r in want])
    assert batched.perf["evicted_lanes"] > 0


def test_rf_transient_read_on_checkpoint_boundary():
    """Regression: a register-file transient whose first read lands
    exactly on a checkpoint-interval boundary must not falsely
    reconverge - the lane's flip has to be applied before the masking
    loop's entry-step reconvergence probe."""
    import bisect

    embedded = _embedded("stress")
    batched = Campaign(embedded=embedded, seed=0, batched=True)
    engine = batched._engine_or_none()
    interval = batched.checkpoints().interval
    found = None
    for reg in range(1, 32):
        for step in engine._reg_reads[reg]:
            if step == 0 or step % interval != 0:
                continue
            writes = engine._reg_writes[reg]
            wi = bisect.bisect_left(writes, step)
            inject_at = (writes[wi - 1] + 1) if wi > 0 else 0
            first_read, first_write = engine._reg_first_read_write(
                reg, inject_at)
            if first_read == step and (first_write is None
                                       or first_write >= first_read):
                found = (reg, inject_at)
                break
        if found:
            break
    if found is None:
        pytest.skip("no boundary-aligned register read in this golden run")
    reg, inject_at = found
    spec = FaultSpec("state.rf.value", 2, index=reg, is_state=True)
    scalar = Campaign(embedded=embedded, seed=0)
    scalar.golden_trace()
    got = batched._run_batch_entries([(spec, TRANSIENT, inject_at, False)])
    want = scalar._execute(spec, TRANSIENT, inject_at)
    assert result_to_record(got[0]) == result_to_record(want)


# -- grouping invariance ---------------------------------------------------

def test_batch_size_equivalence():
    """batch_size 1, 7 and 64 produce identical records."""
    embedded = _embedded("stress")
    reference = None
    for size in (1, 7, 64):
        campaign = Campaign(embedded=embedded, seed=9, batched=True,
                            batch_size=size)
        records = _records(campaign, 50, TRANSIENT)
        if reference is None:
            reference = records
        else:
            assert records == reference


def test_planned_batch_matches_planned_one_by_one():
    """Any chunking of a plan equals running each experiment alone."""
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=4)
    plan = plan_campaign(scalar.points, 30, TRANSIENT, seed=4)
    want = [result_to_record(scalar.run_planned(exp))
            for exp in plan.experiments]
    batched = Campaign(embedded=embedded, seed=4, batched=True, batch_size=8)
    experiments = list(plan.experiments)
    got = []
    for lo in (0, 11, 23):  # deliberately ragged chunks
        hi = {0: 11, 11: 23, 23: 30}[lo]
        got.extend(result_to_record(result) for result in
                   batched.run_planned_batch(experiments[lo:hi]))
    assert got == want


def test_execute_plan_batched_matches_scalar():
    """The planned engine's serial batched path is plan-identical."""
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=5)
    plan = plan_campaign(scalar.points, 32, PERMANENT, seed=5)
    want = execute_plan(scalar, plan, workers=1)
    batched = Campaign(embedded=embedded, seed=5, batched=True, batch_size=16)
    got = execute_plan(batched, plan, workers=1)
    assert ([result_to_record(r) for r in got.results]
            == [result_to_record(r) for r in want.results])
    assert batched.perf["experiments"] == 32


# -- composition -----------------------------------------------------------

@pytest.mark.parametrize("duration", DURATIONS)
def test_hybrid_batched_composition(duration):
    """batched + checkpoints + hybrid synthesis == scalar hybrid."""
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=13, hybrid=True)
    batched = Campaign(embedded=embedded, seed=13, hybrid=True,
                       batched=True, batch_size=16)
    assert _records(batched, 60, duration) == _records(scalar, 60, duration)


def test_batched_without_checkpoints_degrades_to_scalar():
    """No checkpoint store -> no engine; results still correct."""
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=6, use_checkpoints=False)
    batched = Campaign(embedded=embedded, seed=6, use_checkpoints=False,
                       batched=True)
    assert _records(batched, 20, TRANSIENT) == _records(scalar, 20, TRANSIENT)
    assert batched._engine_or_none() is None


def test_intermittent_entries_take_scalar_path():
    """Durations the engine rejects route through the scalar loop."""
    embedded = _embedded("stress")
    scalar = Campaign(embedded=embedded, seed=8)
    batched = Campaign(embedded=embedded, seed=8, batched=True)
    scalar.golden_trace()
    spec = FaultSpec("ex.alu.result", 1 << 4)
    got = batched._run_batch_entries([(spec, INTERMITTENT, 40, False)])
    want = scalar._execute(spec, INTERMITTENT, 40)
    assert result_to_record(got[0]) == result_to_record(want)


def test_run_batch_rejects_unknown_duration():
    campaign = Campaign(embedded=_embedded("stress"), batched=True)
    engine = campaign._engine_or_none()
    assert isinstance(engine, BatchedEngine)
    spec = FaultSpec("ex.alu.result", 1 << 4)
    with pytest.raises(ValueError):
        engine.run_batch([(spec, INTERMITTENT, 3, True, True)])


# -- content-key / spec neutrality -----------------------------------------

def test_campaign_spec_carries_batched_knobs():
    spec = CampaignSpec.from_dict(
        {"workload": "stress", "batched": True, "batch_size": 7})
    spec.validate()
    campaign = spec.build_campaign()
    assert campaign.batched is True
    assert campaign.batch_size == 7
    assert spec.to_dict()["batched"] is True
    with pytest.raises(SpecError):
        CampaignSpec.from_dict({"batch_size": 0}).validate()
    with pytest.raises(SpecError):
        CampaignSpec.from_dict({"batched": 1}).validate()


def test_experiment_keys_ignore_batched_knobs():
    """Content keys hash binary + spec + seed - never execution knobs -
    so batched and scalar runs share one result cache."""
    from repro.service.store import plan_keys

    scalar = Campaign(embedded=_embedded("stress"), seed=2)
    plan = plan_campaign(scalar.points, 10, TRANSIENT, seed=2)
    digest = "0" * 64
    assert plan_keys(digest, plan, 1.25) == plan_keys(digest, plan, 1.25)
    spec_a = CampaignSpec.from_dict({"workload": "stress"})
    spec_b = CampaignSpec.from_dict(
        {"workload": "stress", "batched": True, "batch_size": 7})
    campaign_a, campaign_b = spec_a.build_campaign(), spec_b.build_campaign()
    plan_a = plan_campaign(campaign_a.points, 10, TRANSIENT, seed=0)
    plan_b = plan_campaign(campaign_b.points, 10, TRANSIENT, seed=0)
    assert plan_a.fingerprint() == plan_b.fingerprint()


# -- perf counters / telemetry ---------------------------------------------

def test_perf_counters_and_telemetry_events():
    events = []
    campaign = Campaign(embedded=_embedded("stress"), seed=2, batched=True,
                        batch_size=8)
    campaign.run(experiments=24, duration=TRANSIENT, telemetry=events.append)
    perf = campaign.perf_rates()
    assert perf["experiments"] == 24
    assert perf["experiments_per_second"] > 0
    assert perf["instructions_per_second"] > 0
    assert 0.0 <= perf["eviction_rate"] <= 1.0
    assert perf["lanes"] == (perf["synthesized_lanes"]
                             + perf["evicted_lanes"])
    finish = [e for e in events if e.kind == "finish"][-1]
    assert finish.perf["experiments"] == 24
    assert event_to_dict(finish)["perf"]["lanes"] == finish.perf["lanes"]


def test_scalar_campaign_also_reports_perf():
    """Throughput counters exist (zero lanes) on the scalar path too."""
    campaign = Campaign(embedded=_embedded("small"), seed=1)
    campaign.run(experiments=5, duration=TRANSIENT)
    perf = campaign.perf_rates()
    assert perf["experiments"] == 5
    assert perf["lanes"] == 0
    assert perf["eviction_rate"] == 0.0
    assert perf["experiments_per_second"] > 0


# -- backend resolution and numpy column backend ---------------------------

def test_resolve_backend_explicit_and_env(monkeypatch):
    monkeypatch.delenv("ARGUS_REPRO_NUMPY", raising=False)
    assert resolve_backend() == ("python", None)
    assert resolve_backend("python") == ("python", None)
    with pytest.raises(ValueError):
        resolve_backend("vector")
    for off in ("0", "false", "no", ""):
        monkeypatch.setenv("ARGUS_REPRO_NUMPY", off)
        assert resolve_backend()[0] == "python"
    monkeypatch.setenv("ARGUS_REPRO_NUMPY", "1")
    assert resolve_backend()[0] in ("numpy", "python")  # installed or not


def test_resolve_backend_numpy_missing(monkeypatch):
    real_import = builtins.__import__

    def no_numpy(name, *args, **kwargs):
        if name == "numpy":
            raise ImportError("numpy unavailable")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_numpy)
    with pytest.raises(ValueError):
        resolve_backend("numpy")  # explicit request must not degrade
    monkeypatch.setenv("ARGUS_REPRO_NUMPY", "1")
    assert resolve_backend() == ("python", None)  # env opt-in falls back


def test_numpy_backend_records_identical():
    pytest.importorskip("numpy")
    embedded = _embedded("stress")
    plain = Campaign(embedded=embedded, seed=17, batched=True, batch_size=16)
    vectored = Campaign(embedded=embedded, seed=17, batched=True,
                        batch_size=16, backend="numpy")
    assert (_records(vectored, 60, TRANSIENT)
            == _records(plain, 60, TRANSIENT))
    assert vectored._engine.backend == "numpy"
    assert plain._engine.backend == "python"
