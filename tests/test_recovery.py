"""Tests for checkpoint/rollback recovery (the SafetyNet companion)."""

import pytest

from repro.argus.recovery import (
    Checkpoint,
    RecoveringCore,
    UnrecoverableError,
)
from repro.cpu import CheckedCore
from repro.faults.injector import SignalInjector
from repro.faults.model import FaultSpec
from repro.toolchain import embed_program

PROGRAM = """
start:  li   r1, 20
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        lwz  r3, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        sw   r2, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

EXPECTED_SUM = sum(range(1, 21))


class TestCheckpoint:
    def test_capture_restore_roundtrip(self):
        embedded = embed_program(PROGRAM)
        core = CheckedCore(embedded, detect=True)
        for _ in range(10):
            core.step()
        snapshot = Checkpoint.capture(core)
        state_then = core.architectural_state()
        for _ in range(15):
            core.step()
        assert core.architectural_state() != state_then
        snapshot.restore(core)
        assert core.architectural_state() == state_then
        assert core.instret == snapshot.instret

    def test_restored_core_completes_correctly(self):
        embedded = embed_program(PROGRAM)
        core = CheckedCore(embedded, detect=True)
        for _ in range(12):
            core.step()
        snapshot = Checkpoint.capture(core)
        for _ in range(20):
            core.step()
        snapshot.restore(core)
        core.run()
        assert core.load_word(embedded.program.addr_of("buf") + 4) == EXPECTED_SUM

    def test_restore_is_deep(self):
        embedded = embed_program(PROGRAM)
        core = CheckedCore(embedded, detect=True)
        core.run()
        snapshot = Checkpoint.capture(core)
        snapshot.regs[5] = 0xDEAD  # mutating the snapshot copy...
        assert core.rf.values[5] != 0xDEAD or core.rf.values[5] == 0xDEAD
        core2 = CheckedCore(embed_program(PROGRAM), detect=True)
        before = list(core2.rf.values)
        probe = Checkpoint.capture(core2)
        probe.regs[1] = 0x1234
        assert core2.rf.values == before  # capture copied, not aliased


class TestRecoveringCore:
    def test_clean_run_no_rollbacks(self):
        embedded = embed_program(PROGRAM)
        recovering = RecoveringCore(CheckedCore(embedded, detect=True),
                                    checkpoint_interval=16)
        result = recovering.run()
        assert result.halted
        assert result.rollbacks == 0
        assert result.checkpoints_taken >= 1

    def test_transient_error_recovered_with_correct_result(self):
        """A transient fault costs rollbacks but the program still
        produces the fault-free answer - the paper's whole premise."""
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("ex.alu.result", 1 << 6))
        core = CheckedCore(embedded, injector=injector, detect=True)
        recovering = RecoveringCore(core, checkpoint_interval=8)

        # Drive a transient: enable the fault mid-run, disable it after
        # the first detection (the upset has passed).
        steps = 0
        while not core.halted:
            if steps == 30:
                injector.enable()
            try:
                core.step()
            except Exception:
                injector.disable()
                recovering.rollbacks += 1
                recovering._checkpoint.restore(core)
                continue
            recovering._maybe_checkpoint()
            steps += 1
        assert recovering.rollbacks >= 1
        assert core.load_word(embedded.program.addr_of("buf") + 4) == EXPECTED_SUM

    def test_permanent_error_declared_unrecoverable(self):
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("ex.alu.result", 1 << 6))
        core = CheckedCore(embedded, injector=injector, detect=True)
        injector.enable()
        recovering = RecoveringCore(core, checkpoint_interval=8, max_retries=3)
        with pytest.raises(UnrecoverableError) as err:
            recovering.run()
        assert err.value.attempts == 4
        assert recovering.rollbacks == 4

    def test_detected_masked_error_recovery_is_transparent(self):
        """A DME (fault in checker hardware) triggers rollbacks; once it
        clears, execution completes with the right result - 'DMEs only
        affect performance' (Sec. 4.1.2)."""
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("chk.adder.sum", 1))
        core = CheckedCore(embedded, injector=injector, detect=True)
        recovering = RecoveringCore(core, checkpoint_interval=8, max_retries=5)
        injector.enable()
        try:
            recovering.run(max_instructions=10_000)
        except UnrecoverableError:
            injector.disable()
            recovering._checkpoint.restore(core)
            result = recovering.run()
            assert result.halted
        assert core.load_word(embedded.program.addr_of("buf") + 4) == EXPECTED_SUM

    def test_bad_interval_rejected(self):
        embedded = embed_program(PROGRAM)
        with pytest.raises(ValueError):
            RecoveringCore(CheckedCore(embedded), checkpoint_interval=0)
