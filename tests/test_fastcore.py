"""Unit tests for the fast functional + timing core."""

import pytest

from repro.asm import assemble, parse
from repro.cpu import ExecutionLimitExceeded, FastCore, Timing
from repro.isa.opcodes import Op
from repro.mem.hierarchy import MemoryConfig


def run(source, **kwargs):
    core = FastCore(assemble(parse(source)), **kwargs)
    result = core.run()
    return core, result


class TestArithmetic:
    def test_add_chain(self):
        core, __ = run("li r1, 40\nli r2, 2\nadd r3, r1, r2\nhalt")
        assert core.reg(3) == 42

    def test_r0_is_hardwired_zero(self):
        core, __ = run("li r0, 99\nadd r1, r0, r0\nhalt")
        assert core.reg(0) == 0
        assert core.reg(1) == 0

    def test_movhi_ori_pair(self):
        core, __ = run("li r1, 0xDEADBEEF\nhalt")
        assert core.reg(1) == 0xDEADBEEF

    def test_signed_division(self):
        core, __ = run("li r1, -100\nli r2, 7\ndiv r3, r1, r2\nhalt")
        assert core.reg(3) == (-14) & 0xFFFFFFFF

    def test_extensions(self):
        core, __ = run("li r1, 0x8081\nexths r2, r1\nextbz r3, r1\nhalt")
        assert core.reg(2) == 0xFFFF8081
        assert core.reg(3) == 0x81


class TestMemoryOps:
    def test_word_store_load(self):
        core, __ = run("""
            la r1, buf
            li r2, 0x12345678
            sw r2, 0(r1)
            lwz r3, 0(r1)
            halt
            .data
buf:        .word 0
        """)
        assert core.reg(3) == 0x12345678

    def test_subword_store_load(self):
        core, __ = run("""
            la r1, buf
            li r2, -2
            sh r2, 0(r1)
            lhz r3, 0(r1)
            lhs r4, 0(r1)
            sb r2, 5(r1)
            lbz r5, 5(r1)
            lbs r6, 5(r1)
            halt
            .data
buf:        .word 0, 0
        """)
        assert core.reg(3) == 0xFFFE
        assert core.reg(4) == 0xFFFFFFFE
        assert core.reg(5) == 0xFE
        assert core.reg(6) == 0xFFFFFFFE

    def test_initial_data_visible(self):
        core, __ = run("la r1, v\nlwz r2, 0(r1)\nhalt\n.data\nv: .word 1234")
        assert core.reg(2) == 1234


class TestControlFlow:
    def test_taken_branch_skips(self):
        core, __ = run("""
            li r1, 1
            sfeqi r1, 1
            bf skip
            nop
            li r2, 111
skip:       halt
        """)
        assert core.reg(2) == 0

    def test_not_taken_branch_falls_through(self):
        core, __ = run("""
            li r1, 1
            sfeqi r1, 2
            bf skip
            nop
            li r2, 111
skip:       halt
        """)
        assert core.reg(2) == 111

    def test_delay_slot_always_executes(self):
        core, __ = run("""
            li r1, 1
            sfeqi r1, 1
            bf skip
            li r2, 5
            li r2, 9
skip:       halt
        """)
        assert core.reg(2) == 5

    def test_call_and_return(self):
        core, __ = run("""
start:      jal fn
            nop
            addi r2, r2, 1
            halt
fn:         li r2, 10
            ret
            nop
        """)
        assert core.reg(2) == 11
        assert core.reg(9) == 0x1008

    def test_indirect_jump_masks_tag_bits(self):
        core, __ = run("""
start:      la r1, ptr
            lwz r2, 0(r1)
            jr r2
            nop
            halt
target:     li r3, 42
            halt
            .data
ptr:        .codeptr target
        """)
        assert core.reg(3) == 42

    def test_branch_in_delay_slot_is_an_error(self):
        with pytest.raises(RuntimeError):
            run("j a\nj a\na: halt")

    def test_loop_executes_expected_count(self):
        core, result = run("""
            li r1, 5
            li r2, 0
loop:       addi r2, r2, 1
            addi r1, r1, -1
            sfgtsi r1, 0
            bf loop
            nop
            halt
        """)
        assert core.reg(2) == 5


class TestTiming:
    def test_cpi_one_for_straightline_hits(self):
        __, result = run("nop\n" * 10 + "halt")
        # 11 instructions, one cold I-cache miss per 16-byte line.
        lines = (11 * 4 + 15) // 16
        assert result.cycles == 11 + lines * 20

    def test_mul_div_stalls(self):
        timing = Timing(mul_extra=2, div_extra=32)
        __, plain = run("li r1, 6\nli r2, 7\nadd r3, r1, r2\nhalt", timing=timing)
        __, mul = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt", timing=timing)
        __, div = run("li r1, 6\nli r2, 7\ndiv r3, r1, r2\nhalt", timing=timing)
        assert mul.cycles - plain.cycles == 2
        assert div.cycles - plain.cycles == 32

    def test_dcache_miss_penalty(self):
        source = "la r1, v\nlwz r2, 0(r1)\nlwz r3, 0(r1)\nhalt\n.data\nv: .word 1"
        __, result = run(source, mem_config=MemoryConfig.paper(ways=1))
        assert result.dcache_misses == 1
        assert result.dcache_hits == 1

    def test_sig_counts_tracked(self):
        __, result = run("sig\nsig 1\nnop\nhalt")
        assert result.sig_instructions == 2
        assert result.instructions == 4

    def test_histogram(self):
        core = FastCore(assemble(parse("nop\nnop\nhalt")), collect_histogram=True)
        result = core.run()
        assert result.op_histogram["NOP"] == 2
        assert result.op_histogram["HALT"] == 1
        # JSON-safe by construction: string keys, int values.
        import json

        assert json.loads(json.dumps(result.op_histogram)) == result.op_histogram


class TestLimits:
    def test_instruction_budget(self):
        core = FastCore(assemble(parse("loop: j loop\nnop")))
        with pytest.raises(ExecutionLimitExceeded):
            core.run(max_instructions=100)

    def test_cycle_budget(self):
        core = FastCore(assemble(parse("loop: j loop\nnop")))
        with pytest.raises(ExecutionLimitExceeded):
            core.run(max_cycles=50)

    def test_halted_core_reports_state(self):
        core, result = run("halt")
        assert result.halted
        assert core.halted
