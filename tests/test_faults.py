"""Unit tests for fault specs, injectors, state appliers and the
injection-point population."""

import random

import pytest

from repro.cpu import CheckedCore
from repro.faults.injector import SignalInjector
from repro.faults.model import PERMANENT, TRANSIENT, FaultSpec, StateFaultApplier
from repro.faults.points import (
    ARGUS_COMPONENTS,
    BASELINE_COMPONENTS,
    GATE_INVENTORY,
    argus_weight_fraction,
    build_point_population,
    population_summary,
    sample_points,
)
from repro.toolchain import embed_program

SMALL = """
start:  li   r1, 5
        la   r2, buf
        sw   r1, 0(r2)
        halt
        .data
buf:    .word 0
"""


class TestSignalInjector:
    def test_matching_signal_flipped(self):
        injector = SignalInjector(FaultSpec("ex.alu.result", 0b100))
        injector.enable()
        assert injector.tap("ex.alu.result", 0) == 4
        assert injector.fired == 1

    def test_non_matching_signal_untouched(self):
        injector = SignalInjector(FaultSpec("ex.alu.result", 1))
        injector.enable()
        assert injector.tap("ex.op_a", 7) == 7
        assert injector.fired == 0

    def test_disabled_injector_is_identity(self):
        injector = SignalInjector(FaultSpec("ex.alu.result", 1))
        assert injector.tap("ex.alu.result", 7) == 7

    def test_index_qualifier(self):
        injector = SignalInjector(FaultSpec("ex.op_a", 1, index=5))
        injector.enable()
        assert injector.tap("ex.op_a", 0, index=4) == 0
        assert injector.tap("ex.op_a", 0, index=5) == 1

    def test_state_spec_rejected(self):
        with pytest.raises(ValueError):
            SignalInjector(FaultSpec("state.rf.value", 1, index=3, is_state=True))


class TestStateFaultApplier:
    def _core(self):
        return CheckedCore(embed_program(SMALL), detect=False)

    def test_rf_value_flip(self):
        core = self._core()
        core.step()  # r1 = 5
        applier = StateFaultApplier(
            FaultSpec("state.rf.value", 1 << 1, index=1, is_state=True), TRANSIENT)
        applier.apply(core)
        assert core.rf.values[1] == 7

    def test_rf_r0_protected(self):
        core = self._core()
        applier = StateFaultApplier(
            FaultSpec("state.rf.value", 1, index=0, is_state=True), TRANSIENT)
        applier.apply(core)
        assert core.rf.values[0] == 0

    def test_permanent_reasserts_stuck_value(self):
        core = self._core()
        core.step()
        applier = StateFaultApplier(
            FaultSpec("state.rf.value", 1 << 1, index=1, is_state=True), PERMANENT)
        applier.apply(core)
        core.rf.values[1] = 5  # a rewrite "repairs" the bit...
        applier.reassert(core)  # ...and the stuck-at forces it again
        assert core.rf.values[1] == 7

    def test_transient_does_not_reassert(self):
        core = self._core()
        core.step()
        applier = StateFaultApplier(
            FaultSpec("state.rf.value", 1 << 1, index=1, is_state=True), TRANSIENT)
        applier.apply(core)
        core.rf.values[1] = 5
        applier.reassert(core)
        assert core.rf.values[1] == 5

    def test_pc_flip(self):
        core = self._core()
        applier = StateFaultApplier(
            FaultSpec("state.pc", 1 << 3, is_state=True), TRANSIENT)
        before = core.pc
        applier.apply(core)
        assert core.pc == before ^ 8

    def test_flag_flip(self):
        core = self._core()
        applier = StateFaultApplier(
            FaultSpec("state.flag", 1, is_state=True), TRANSIENT)
        applier.apply(core)
        assert core.flag == 1

    def test_shs_flip(self):
        core = self._core()
        applier = StateFaultApplier(
            FaultSpec("state.shs", 1 << 2, index=7, is_state=True), TRANSIENT)
        before = core.shs.values[7]
        applier.apply(core)
        assert core.shs.values[7] == before ^ 4

    def test_mem_word_flip_resolves_to_written_word(self):
        core = self._core()
        core.run()  # performs the store
        applier = StateFaultApplier(
            FaultSpec("state.mem.word", 1, index=0, is_state=True), TRANSIENT)
        applier.apply(core)
        corrupted = [addr for addr in core.dmem.written_words()
                     if not core.dmem.load_word(addr).ok]
        assert len(corrupted) == 1

    def test_signal_spec_rejected(self):
        with pytest.raises(ValueError):
            StateFaultApplier(FaultSpec("ex.alu.result", 1), TRANSIENT)

    def test_unknown_target_rejected(self):
        applier = StateFaultApplier(
            FaultSpec("state.bogus", 1, is_state=True), TRANSIENT)
        with pytest.raises(ValueError):
            applier.apply(self._core())


class TestPointPopulation:
    def test_population_nonempty_and_weighted(self):
        points = build_point_population()
        assert len(points) > 2000
        assert all(point.weight > 0 for point in points)

    def test_component_weights_match_inventory_shape(self):
        """Each component's live + inert weight stays proportional to its
        gate count (the sampling analogue of uniform gate sampling)."""
        totals = population_summary()
        for component in ("regfile", "alu", "muldiv"):
            assert totals[component] > GATE_INVENTORY[component]  # live+inert

    def test_argus_fraction_matches_paper_overhead(self):
        assert 0.12 < argus_weight_fraction() < 0.22

    def test_double_bit_points_present_and_rare(self):
        points = build_point_population()
        doubles = [p for p in points if p.double_bit]
        assert doubles
        double_weight = sum(p.weight for p in doubles)
        total_weight = sum(p.weight for p in points)
        assert double_weight / total_weight < 0.02

    def test_double_bits_excludable(self):
        points = build_point_population(include_double_bits=False)
        assert not any(p.double_bit for p in points)

    def test_inert_points_represent_logic_masking(self):
        points = build_point_population()
        inert_weight = sum(p.weight for p in points
                           if p.spec.target.startswith("inert."))
        total = sum(p.weight for p in points)
        assert 0.25 < inert_weight / total < 0.45

    def test_pc_signals_skip_nonexistent_low_bits(self):
        points = build_point_population()
        for point in points:
            if point.spec.target in ("if.pc", "state.pc", "ctl.btarget"):
                assert point.spec.mask & 0b11 == 0

    def test_sampling_is_deterministic_per_seed(self):
        points = build_point_population()
        a = sample_points(points, 50, random.Random(3))
        b = sample_points(points, 50, random.Random(3))
        assert [p.spec for p in a] == [p.spec for p in b]

    def test_inventory_totals_near_paper_40k(self):
        total = sum(GATE_INVENTORY.values())
        assert 35000 < total < 45000

    def test_component_partition(self):
        assert set(BASELINE_COMPONENTS) | set(ARGUS_COMPONENTS) == set(GATE_INVENTORY)
        assert not set(BASELINE_COMPONENTS) & set(ARGUS_COMPONENTS)
