"""Tests pinning each kernel's intended instruction-mix character."""

import pytest

from repro.eval.characterization import (
    characterize_suite,
    format_characterization,
)
from repro.workloads import WORKLOADS


@pytest.fixture(scope="module")
def profiles():
    subset = [WORKLOADS[name] for name in
              ("adpcm_enc", "gs", "gsm", "mpeg2", "pegwit", "rasta",
               "epic", "mesa")]
    return {row.name: row for row in characterize_suite(subset)}


class TestKernelCharacter:
    def test_gsm_is_multiply_heavy(self, profiles):
        assert profiles["gsm"].muldiv_fraction > 0.05
        assert profiles["gsm"].muldiv_fraction > profiles["epic"].muldiv_fraction

    def test_mpeg2_is_memory_heavy(self, profiles):
        assert profiles["mpeg2"].memory_fraction > 0.15
        assert profiles["mpeg2"].memory_fraction > profiles["pegwit"].memory_fraction

    def test_pegwit_is_alu_heavy(self, profiles):
        assert profiles["pegwit"].alu_fraction > 0.6

    def test_rasta_uses_division(self, profiles):
        assert profiles["rasta"].muldiv_fraction > 0.05

    def test_mesa_divides_for_perspective(self, profiles):
        assert profiles["mesa"].muldiv_fraction > 0.10

    def test_cpi_band(self, profiles):
        """Sec 4.4: an average instruction takes 1.1-1.7 cycles.  Stream-
        or divide-bound kernels (epic, rasta) legitimately sit above the
        band on a 20-cycle-miss system; the suite's typical (median)
        kernel must sit inside it."""
        cpis = sorted(row.cpi for row in profiles.values())
        median = cpis[len(cpis) // 2]
        assert 1.05 < median < 1.8
        for row in profiles.values():
            assert 1.0 < row.cpi < 3.8, row.name

    def test_fractions_are_sane(self, profiles):
        for row in profiles.values():
            total = (row.alu_fraction + row.muldiv_fraction
                     + row.memory_fraction + row.control_fraction)
            assert 0.5 < total <= 1.01, row.name

    def test_embedding_statistics_present(self, profiles):
        for row in profiles.values():
            assert row.blocks > 3
            assert row.sigs_added >= 1
            assert 0.0 < row.static_overhead < 0.2


class TestFormatting:
    def test_markdown_table(self, profiles):
        text = format_characterization(list(profiles.values()))
        assert text.startswith("| bench")
        assert "| gsm |" in text
