"""Tests for the area model (Table 2) and related-work baselines."""

import pytest

from repro.area.baselines import related_work_comparison
from repro.area.cache import CacheAreaModel, argus_dcache_area, cache_area
from repro.area.components import (
    argus_breakdown,
    component_areas,
    core_area_argus,
    core_area_baseline,
    core_overhead,
)
from repro.area.report import area_table, format_area_table
from repro.eval import paper


class TestCoreArea:
    def test_baseline_calibrated_to_paper(self):
        assert core_area_baseline() == pytest.approx(6.58, abs=0.01)

    def test_argus_core_near_paper(self):
        assert core_area_argus() == pytest.approx(7.67, rel=0.02)

    def test_overhead_under_20_percent(self):
        """Headline claim: <17% core area overhead (we model 17.0%)."""
        assert 0.10 < core_overhead() < 0.20

    def test_component_areas_sum(self):
        areas = component_areas()
        assert sum(areas.values()) == pytest.approx(core_area_argus())

    def test_dataflow_checking_dominates_argus_area(self):
        """Sec 4.3: 'Most of Argus-1's area is used for dataflow and
        control flow checking'; computation checkers come second."""
        breakdown = list(argus_breakdown())
        assert breakdown[0] == "shs_datapath"


class TestCacheArea:
    def test_paper_fit_points(self):
        assert cache_area(ways=1) == pytest.approx(2.14, abs=0.05)
        assert cache_area(ways=2) == pytest.approx(2.42, abs=0.06)

    def test_argus_dcache_overhead(self):
        for ways, reference in ((1, 0.049), (2, 0.051)):
            base = cache_area(ways=ways)
            argus = argus_dcache_area(ways=ways)
            overhead = (argus - base) / base
            assert overhead == pytest.approx(reference, abs=0.015)

    def test_icache_unchanged(self):
        """Argus adds no I-cache parity: instruction errors surface at the
        DCS comparison (Sec. 3.4)."""
        assert cache_area(ways=1, parity_per_word=False) == cache_area(ways=1)

    def test_tag_bits_scale_with_associativity(self):
        one = CacheAreaModel(ways=1)
        two = CacheAreaModel(ways=2)
        assert two.tag_bits_per_line > one.tag_bits_per_line

    def test_parity_adds_one_bit_per_word(self):
        plain = CacheAreaModel(ways=1)
        protected = CacheAreaModel(ways=1, parity_per_word=True)
        extra_bits = (protected.data_array_mm2() - plain.data_array_mm2())
        assert extra_bits == pytest.approx(2048 * 24e-6)

    def test_size_scaling(self):
        assert cache_area(size_bytes=16384) > cache_area(size_bytes=8192)


class TestTable2:
    def test_all_rows_present(self):
        labels = [row.label for row in area_table()]
        assert labels == ["core", "I-cache: 1-way", "I-cache: 2-way",
                          "D-cache: 1-way", "D-cache: 2-way",
                          "total: 1-way", "total: 2-way"]

    def test_icache_rows_zero_overhead(self):
        for row in area_table():
            if row.label.startswith("I-cache"):
                assert row.overhead == 0.0

    def test_total_overhead_below_core_overhead(self):
        """Caches dilute the Argus area: total-chip overhead (paper ~11%)
        is lower than core overhead (paper ~17%)."""
        rows = {row.label: row for row in area_table()}
        assert rows["total: 1-way"].overhead < rows["core"].overhead
        assert 0.08 < rows["total: 1-way"].overhead < 0.14
        assert 0.08 < rows["total: 2-way"].overhead < 0.14

    def test_rows_match_paper_within_tolerance(self):
        rows = {row.label: row for row in area_table()}
        for label, (base, argus, overhead) in paper.TABLE2.items():
            row = rows[label]
            assert row.baseline_mm2 == pytest.approx(base, rel=0.05)
            assert row.argus_mm2 == pytest.approx(argus, rel=0.05)
            assert row.overhead == pytest.approx(overhead, abs=0.02)

    def test_formatting(self):
        text = format_area_table()
        assert "core" in text and "total: 2-way" in text


class TestRelatedWork:
    def test_argus_cheapest_full_coverage_scheme(self):
        """The paper's pitch: among schemes detecting both transients and
        permanents, Argus has by far the lowest area overhead."""
        rows = related_work_comparison()
        full = [r for r in rows if r.detects_transients and r.detects_permanents]
        cheapest = min(full, key=lambda r: r.core_overhead)
        assert cheapest.name == "Argus-1"

    def test_dmr_and_tmr_cost_a_core(self):
        rows = {r.name: r for r in related_work_comparison()}
        assert rows["DMR"].core_overhead > 1.0
        assert rows["TMR-FF (LEON-FT)"].core_overhead == pytest.approx(1.0, abs=0.25)

    def test_diva_checker_near_core_size_for_simple_cores(self):
        rows = {r.name: r for r in related_work_comparison()}
        assert rows["DIVA checker"].core_overhead > 0.75

    def test_bulletproof_no_transients(self):
        rows = {r.name: r for r in related_work_comparison()}
        assert not rows["BulletProof"].detects_transients
        assert rows["BulletProof"].core_overhead > 0.096  # 1-wide penalty

    def test_software_redundancy_trades_time_not_area(self):
        rows = {r.name: r for r in related_work_comparison()}
        assert rows["SWIFT (software)"].core_overhead == 0.0
        assert rows["SWIFT (software)"].performance_overhead >= 0.5
