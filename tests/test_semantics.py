"""Unit + property tests for the architectural arithmetic semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.opcodes import Cond, Op
from repro.isa.semantics import (
    alu_execute,
    divide,
    evaluate_condition,
    mul64,
    sign_extend_load,
    to_signed,
)

WORDS = st.integers(0, 0xFFFFFFFF)


class TestAluOps:
    def test_add_wraps(self):
        assert alu_execute(Op.ADD, 0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert alu_execute(Op.SUB, 0, 1) == 0xFFFFFFFF

    def test_logic(self):
        assert alu_execute(Op.AND, 0xF0F0, 0xFF00) == 0xF000
        assert alu_execute(Op.OR, 0xF0F0, 0x0F0F) == 0xFFFF
        assert alu_execute(Op.XOR, 0xFFFF, 0x00FF) == 0xFF00

    def test_shifts(self):
        assert alu_execute(Op.SLL, 1, 31) == 0x80000000
        assert alu_execute(Op.SRL, 0x80000000, 31) == 1
        assert alu_execute(Op.SRA, 0x80000000, 31) == 0xFFFFFFFF

    def test_shift_amount_masked_to_5_bits(self):
        assert alu_execute(Op.SLL, 1, 32) == 1
        assert alu_execute(Op.SRL, 2, 33) == 1

    def test_shift_immediates(self):
        assert alu_execute(Op.SLLI, 3, shamt=4) == 48
        assert alu_execute(Op.SRAI, 0xFFFFFFF0, shamt=2) == 0xFFFFFFFC

    def test_extensions(self):
        assert alu_execute(Op.EXTBS, 0x80) == 0xFFFFFF80
        assert alu_execute(Op.EXTBZ, 0xFF80) == 0x80
        assert alu_execute(Op.EXTHS, 0x8000) == 0xFFFF8000
        assert alu_execute(Op.EXTHZ, 0x18000) == 0x8000

    def test_mul_low_word(self):
        assert alu_execute(Op.MUL, 0xFFFFFFFF, 2) == 0xFFFFFFFE  # -1*2 = -2

    def test_non_alu_op_rejected(self):
        with pytest.raises(Exception):
            alu_execute(Op.J, 1, 2)


class TestMul64:
    def test_signed_product_bits(self):
        assert mul64(Op.MUL, 0xFFFFFFFF, 0xFFFFFFFF) == 1  # (-1)*(-1)

    def test_unsigned_product_bits(self):
        assert mul64(Op.MULU, 0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFE00000001

    def test_upper_half_live_for_signed(self):
        product = mul64(Op.MUL, 0x80000000, 2)  # -2^31 * 2 = -2^32
        assert product == 0xFFFFFFFF00000000


class TestDivide:
    def test_truncation_toward_zero(self):
        quotient, remainder = divide(Op.DIV, (-7) & 0xFFFFFFFF, 2)
        assert to_signed(quotient) == -3
        assert to_signed(remainder) == -1

    def test_euclid_identity_holds(self):
        a, b = (-100) & 0xFFFFFFFF, 7
        quotient, remainder = divide(Op.DIV, a, b)
        assert to_signed(quotient) * 7 + to_signed(remainder) == -100

    def test_unsigned(self):
        assert divide(Op.DIVU, 0xFFFFFFFF, 16) == (0x0FFFFFFF, 15)

    def test_divide_by_zero_defined(self):
        assert divide(Op.DIV, 123, 0) == (0, 123)
        assert divide(Op.DIVU, 0xDEADBEEF, 0) == (0, 0xDEADBEEF)

    def test_int_min_over_minus_one(self):
        quotient, __ = divide(Op.DIV, 0x80000000, 0xFFFFFFFF)
        assert quotient == 0x80000000  # wraps, as 32-bit hardware does


class TestConditions:
    @pytest.mark.parametrize("cond,a,b,expect", [
        (Cond.EQ, 5, 5, True),
        (Cond.NE, 5, 5, False),
        (Cond.GTU, 0xFFFFFFFF, 1, True),
        (Cond.GTS, 0xFFFFFFFF, 1, False),  # -1 > 1 is false signed
        (Cond.LTS, 0x80000000, 0, True),  # INT_MIN < 0
        (Cond.LTU, 0x80000000, 0, False),
        (Cond.GES, 3, 3, True),
        (Cond.LES, 4, 3, False),
        (Cond.GEU, 0, 0, True),
        (Cond.LEU, 1, 2, True),
    ])
    def test_condition_table(self, cond, a, b, expect):
        assert evaluate_condition(cond, a, b) is expect


class TestLoadExtension:
    def test_lwz(self):
        assert sign_extend_load(Op.LWZ, 0xDEADBEEF) == 0xDEADBEEF

    def test_half(self):
        assert sign_extend_load(Op.LHZ, 0x8000) == 0x8000
        assert sign_extend_load(Op.LHS, 0x8000) == 0xFFFF8000

    def test_byte(self):
        assert sign_extend_load(Op.LBZ, 0x80) == 0x80
        assert sign_extend_load(Op.LBS, 0x80) == 0xFFFFFF80


# ---- hypothesis properties ------------------------------------------------

@given(a=WORDS, b=WORDS)
def test_add_sub_inverse(a, b):
    assert alu_execute(Op.SUB, alu_execute(Op.ADD, a, b), b) == a


@given(a=WORDS, b=WORDS)
def test_xor_involution(a, b):
    assert alu_execute(Op.XOR, alu_execute(Op.XOR, a, b), b) == a


@given(a=WORDS, n=st.integers(0, 31))
def test_left_shift_matches_python(a, n):
    assert alu_execute(Op.SLL, a, n) == (a << n) & 0xFFFFFFFF


@given(a=WORDS, b=WORDS)
def test_mul_low_word_sign_independent(a, b):
    """The low 32 bits of signed and unsigned products coincide."""
    assert mul64(Op.MUL, a, b) & 0xFFFFFFFF == mul64(Op.MULU, a, b) & 0xFFFFFFFF


@given(a=WORDS, b=st.integers(1, 0xFFFFFFFF))
def test_divide_identity_signed(a, b):
    quotient, remainder = divide(Op.DIV, a, b)
    lhs = to_signed(b) * to_signed(quotient) + to_signed(remainder)
    assert lhs & 0xFFFFFFFF == a


@given(a=WORDS, b=st.integers(1, 0xFFFFFFFF))
def test_divide_identity_unsigned(a, b):
    quotient, remainder = divide(Op.DIVU, a, b)
    assert (b * quotient + remainder) & 0xFFFFFFFF == a
    assert remainder < b


@given(value=WORDS)
def test_signed_unsigned_roundtrip(value):
    assert to_signed(value) & 0xFFFFFFFF == value
