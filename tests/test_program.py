"""Unit tests for the Program container and memory-image loading."""

import pytest

from repro.asm import assemble, parse
from repro.asm.program import default_data_base
from repro.mem.main import MainMemory

SOURCE = """
start:  li r1, 1
        halt
        .data
v:      .word 0xCAFEBABE
b:      .byte 0x5A
"""


class TestProgram:
    def test_load_into_memory(self):
        program = assemble(parse(SOURCE))
        memory = MainMemory()
        program.load_into(memory)
        assert memory.read_word(program.text_base) == program.words[0]
        assert memory.read_word(program.addr_of("v")) == 0xCAFEBABE
        assert memory.read_byte(program.addr_of("b")) == 0x5A

    def test_footprint(self):
        program = assemble(parse(SOURCE))
        text_bytes, data_bytes = program.footprint()
        assert text_bytes == 4 * len(program.words)
        assert data_bytes == len(program.data)

    def test_text_end(self):
        program = assemble(parse("nop\nhalt"))
        assert program.text_end == program.text_base + 8

    def test_repr_mentions_entry(self):
        program = assemble(parse(SOURCE))
        assert "entry" in repr(program)

    def test_default_data_base_aligned(self):
        assert default_data_base(0x1000, 100) % 256 == 0
        assert default_data_base(0x1000, 100) >= 0x1000 + 100

    def test_default_data_base_range_check(self):
        with pytest.raises(ValueError):
            default_data_base(0x7FFFF00, 0x1000)

    def test_lines_map_to_source(self):
        program = assemble(parse("nop\n\nhalt"))
        assert program.lines == [1, 3]
