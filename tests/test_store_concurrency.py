"""Concurrency tests for the shared SQLite store and the journal.

The fabric multiplies writers: several schedulers (and processes) may
share one ``store.sqlite``, and several jobs may interleave appends
into journals that later get compacted.  These tests pin down the two
guarantees that federation leans on: concurrent multi-process store
writes are torn-write-free with exact dedup, and ``Journal.compact()``
of an interleaved-writer file keeps each experiment id exactly once
(last record wins).
"""

import json
import multiprocessing
import threading

from repro.runner import Journal
from repro.service import ResultStore
from repro.service.store import open_store

KEYS = 40
PROCESSES = 4
ROUNDS = 5


def _record(key, writer):
    return {"detected": True, "checker": "parity", "key": key,
            "writer": writer}


def _hammer_store(path, writer, queue):
    """One writer process: repeatedly upsert every key (worst-case
    contention: all writers fight over the same rows)."""
    try:
        store = open_store(path)
        stored = 0
        for _round in range(ROUNDS):
            stored += store.put_many([
                ("key-%03d" % index, "transient/%06d" % index,
                 _record("key-%03d" % index, writer))
                for index in range(KEYS)])
            for index in range(0, KEYS, 7):
                store.put("key-%03d" % index, "transient/%06d" % index,
                          _record("key-%03d" % index, writer))
        store.close()
        queue.put(("ok", writer, stored))
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        queue.put(("error", writer, repr(exc)))


class TestMultiProcessStore:
    def test_concurrent_writers_no_torn_writes_exact_dedup(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        queue = multiprocessing.Queue()
        procs = [multiprocessing.Process(
            target=_hammer_store, args=(path, writer, queue))
            for writer in range(PROCESSES)]
        for proc in procs:
            proc.start()
        outcomes = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert all(kind == "ok" for kind, _w, _n in outcomes), outcomes

        # Exact dedup: across every writer and round, each key was
        # newly stored exactly once fleet-wide.
        assert sum(stored for _k, _w, stored in outcomes) == KEYS

        store = open_store(path)
        assert len(store) == KEYS
        for index in range(KEYS):
            record = store.get("key-%03d" % index)
            # No torn writes: every record is intact, well-formed JSON
            # written in full by exactly one of the racing writers.
            assert record is not None
            assert record["key"] == "key-%03d" % index
            assert record["writer"] in range(PROCESSES)
        store.close()

    def test_two_stores_one_file_share_rows_not_counters(self, tmp_path):
        """Two in-process handles (two schedulers' view) see each
        other's rows immediately; cache counters stay per-handle."""
        path = str(tmp_path / "store.sqlite")
        a, b = open_store(path), open_store(path)
        assert a.put("k", "t/0", {"x": 1})
        assert b.get("k") == {"x": 1}
        assert not b.put("k", "t/0", {"x": 1})  # dedup across handles
        assert len(a) == len(b) == 1
        assert a.stats()["hits"] == 0 and b.stats()["hits"] == 1
        a.close()
        b.close()

    def test_threaded_writers_single_store_handle(self, tmp_path):
        """One scheduler's store handle is shared by its job-runner
        threads; hammer it from several threads at once."""
        store = ResultStore(str(tmp_path / "store.sqlite"))
        errors = []

        def _worker(writer):
            try:
                for _round in range(ROUNDS):
                    store.put_many([
                        ("key-%03d" % index, "transient/%06d" % index,
                         _record("key-%03d" % index, writer))
                        for index in range(KEYS)])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=_worker, args=(writer,))
                   for writer in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert len(store) == KEYS
        assert store.inserts == KEYS
        store.close()


class TestJournalInterleavedWriters:
    def test_compact_interleaved_writers_last_wins_exactly_once(
            self, tmp_path):
        """Two journal handles appending to one file (a crashed-and-
        resumed scheduler re-running in-flight experiments) compact to
        one record per id, the *last* one winning."""
        path = str(tmp_path / "journal.jsonl")
        a = Journal(path).load()
        b = Journal(path).load()
        a.ensure_header({"writer": "a"})
        for index in range(6):
            a.append_result("transient/%06d" % index, {"writer": "a",
                                                       "round": 0})
        # Writer b re-runs a suffix (ids 3..8) with fresher records.
        for index in range(3, 9):
            b.append_result("transient/%06d" % index, {"writer": "b",
                                                       "round": 1})
        a.append_result("transient/%06d" % 0, {"writer": "a", "round": 2})
        a.close()
        b.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "result", "id": "torn')  # torn tail

        journal = Journal(path)
        stats = journal.compact()
        assert stats["results"] == 9
        assert stats["duplicates_dropped"] == 4  # ids 0, 3, 4, 5
        assert stats["torn_dropped"] == 1
        records = journal.load().records
        assert len(records) == 9
        assert records["transient/000000"] == {"writer": "a", "round": 2}
        for index in range(3, 9):
            assert records["transient/%06d" % index]["writer"] == "b"
        # Idempotent: a second compaction changes nothing.
        again = journal.compact()
        assert again == {"results": 9, "duplicates_dropped": 0,
                         "torn_dropped": 0}
        with open(path) as handle:
            ids = [json.loads(line)["id"] for line in handle
                   if '"result"' in line]
        assert len(ids) == len(set(ids)) == 9

    def test_concurrent_thread_appends_then_compact(self, tmp_path):
        """Interleaved appends from two live threads (each with its own
        handle) never corrupt the file: every line stays parseable and
        compaction converges."""
        path = str(tmp_path / "journal.jsonl")
        handles = [Journal(path).load() for _ in range(2)]
        errors = []

        def _append(journal, writer):
            try:
                for index in range(50):
                    journal.append_result(
                        "transient/%06d" % index,
                        {"writer": writer, "index": index})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=_append, args=(handle, w))
                   for w, handle in enumerate(handles)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for handle in handles:
            handle.close()
        assert errors == []
        with open(path) as handle:
            for line in handle:
                json.loads(line)  # no torn/interleaved partial lines
        stats = Journal(path).compact()
        assert stats["results"] == 50
        assert stats["duplicates_dropped"] == 50
        assert sorted(Journal(path).load().records) == \
            ["transient/%06d" % index for index in range(50)]
