"""Tests for the evaluation harness (paper-vs-measured machinery)."""

import pytest

from repro.eval import paper
from repro.eval.detectors import PAPER_GROUPING, attribution, coverage_report
from repro.eval.false_positives import format_false_positives, run_false_positive_suite
from repro.eval.figures import FigureSeries, run_figures
from repro.eval.latency import LatencyStats, format_latency, latency_by_group
from repro.eval.table1 import Table1Row, format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2
from repro.faults.campaign import CampaignSummary, ExperimentResult
from repro.faults.model import TRANSIENT
from repro.workloads import WORKLOADS


def _result(checker=None, masked=False, latency=None):
    return ExperimentResult(
        spec=None, duration=TRANSIENT, inject_at=0, masked=masked,
        detected=checker is not None, checker=checker,
        latency_cycles=latency, latency_instructions=latency,
        latency_blocks=0 if latency is not None else None)


class TestAttribution:
    def test_memory_folds_into_parity(self):
        assert PAPER_GROUPING["memory"] == "parity"

    def test_fractions(self):
        summary = CampaignSummary(duration=TRANSIENT)
        for checker in ("computation", "computation", "parity", "memory"):
            summary.add(_result(checker=checker))
        measured = attribution(summary)
        assert measured["computation"] == 0.5
        assert measured["parity"] == 0.5  # parity + memory

    def test_empty_attribution(self):
        assert attribution(CampaignSummary(duration=TRANSIENT)) == {}

    def test_coverage_report_keys(self):
        summary = CampaignSummary(duration=TRANSIENT)
        summary.add(_result(checker="parity"))
        report = coverage_report(summary)
        assert report["unmasked_coverage"] == 1.0
        assert report["attribution_paper"] is paper.DETECTION_ATTRIBUTION


class TestLatency:
    def test_bucketing(self):
        results = [_result("computation", latency=1),
                   _result("computation", latency=3),
                   _result("dcs", latency=40),
                   _result("memory", latency=500)]
        stats = latency_by_group(results)
        assert stats["computation"].count == 2
        assert stats["parity"].count == 1  # memory folded in
        assert stats["dcs"].median("cycles") == 40

    def test_percentiles(self):
        stats = LatencyStats("x")
        for value in range(10):
            stats.add(value, value, value)
        assert stats.median("cycles") == 5
        assert stats.p90("cycles") == 9

    def test_empty_stats(self):
        assert LatencyStats("x").median() is None

    def test_formatting(self):
        results = [_result("computation", latency=1)]
        text = format_latency(latency_by_group(results))
        assert "computation" in text


class TestTable1Harness:
    def test_small_run_produces_both_rows(self):
        rows, summaries = run_table1(experiments=30, seed=3)
        assert [row.error_type for row in rows] == ["transient", "permanent"]
        for row in rows:
            assert abs(sum(row.measured.values()) - 1.0) < 1e-9
        text = format_table1(rows)
        assert "paper" in text

    def test_row_formatting(self):
        row = Table1Row("transient",
                        {k: 0.25 for k in paper.TABLE1["transient"]},
                        paper.TABLE1["transient"])
        assert "25.00%" in row.formatted()


class TestTable2Harness:
    def test_rows_have_references(self):
        rows = run_table2()
        assert len(rows) == 7
        for row in rows:
            assert row[4] is not None  # every row exists in the paper

    def test_formatting(self):
        assert "D-cache" in format_table2()


class TestFalsePositives:
    def test_subset_run(self):
        results = run_false_positive_suite(
            workloads=[WORKLOADS["rasta"]], include_stress=True)
        names = [name for name, *_ in results]
        assert names == ["rasta", "stress"]
        assert "false positives: 0" in format_false_positives(results)


class TestFigures:
    def test_series_on_subset(self):
        subset = [WORKLOADS["adpcm_enc"], WORKLOADS["rasta"]]
        fig5, static, fig6, fig7 = run_figures(subset)
        assert set(fig5.values) == {"adpcm_enc", "rasta"}
        for series in (fig5, static, fig6, fig7):
            assert series.paper_average > 0
        assert fig5.average < static.average  # Sec 4.4's key relation
        assert "adpcm_enc" in fig6.formatted()

    def test_series_average(self):
        series = FigureSeries("x", {"a": 0.02, "b": 0.04}, 0.035)
        assert series.average == pytest.approx(0.03)
