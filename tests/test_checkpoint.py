"""Snapshot fidelity and checkpoint-accelerated campaign equivalence.

Two layers of guarantees:

* **Snapshot fidelity** - ``snapshot() -> mutate -> restore()``
  round-trips the complete :class:`CheckedCore` state exactly
  (architectural state, SHS file, control-flow checker, payload
  collector, watchdog, protected memory contents+parity, cache
  tag/LRU/dirty/stat state), across several workloads and both
  transient and permanent faults, and a restored core replays
  bit-identical retire records.
* **Differential classification** - a seeded campaign produces
  *identical* :class:`ExperimentResult` quadrants, per-checker
  attribution and detection latencies with checkpoints on and off, for
  every sampled workload.  This is the proof that warm-starting is a
  pure acceleration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.checkedcore import CheckedCore
from repro.faults.campaign import Campaign
from repro.faults.checkpoint import (CheckpointStore, capture,
                                     masking_view_of, record_checkpoints,
                                     restore)
from repro.faults.injector import SignalInjector
from repro.faults.model import PERMANENT, TRANSIENT, FaultSpec, StateFaultApplier
from repro.faults.stress import build_stress_program
from repro.toolchain import embed_program
from repro.workloads import MESA, RASTA
from repro.workloads.fuzz import generate_program

SMALL = """
start:  li   r1, 5
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

_EMBEDDED = {}


def _embedded(name):
    """Build each workload's embedded program once per test session."""
    if name not in _EMBEDDED:
        builders = {
            "small": lambda: embed_program(SMALL),
            "stress": build_stress_program,
            "fuzz": lambda: embed_program(generate_program(1234)),
            "mesa": MESA.build_embedded,
            "rasta": RASTA.build_embedded,
        }
        _EMBEDDED[name] = builders[name]()
    return _EMBEDDED[name]


#: (name, steps to run before the snapshot, steps to mutate afterwards)
WORKLOADS = [
    ("small", 9, 20),
    ("stress", 300, 200),
    ("mesa", 900, 400),
    ("rasta", 700, 400),
]

#: Faults used to mutate state between snapshot and restore.
MUTATING_FAULTS = [
    (FaultSpec("state.rf.value", 1 << 7, index=3, is_state=True), TRANSIENT),
    (FaultSpec("state.rf.value", 1 << 1, index=9, is_state=True), PERMANENT),
    (FaultSpec("state.shs", 1 << 2, index=5, is_state=True), TRANSIENT),
    (FaultSpec("state.mem.word", 1 << 13, index=0, is_state=True), PERMANENT),
    (FaultSpec("ex.alu.result", 1 << 4), TRANSIENT),
    (FaultSpec("ex.op_a", 1 << 30), PERMANENT),
]


def _full_state(core):
    """Everything a snapshot claims to round-trip, as plain tuples."""
    return {
        "scalars": (core.pc, core.flag, core.cfc_flag, core.cycles,
                    core.instret, core.block_index, core.halted, core.hung,
                    core._in_delay, core._delayed_target, core._pending_term),
        "arch": core.architectural_state(),
        "rf": core.rf.snapshot(),
        "shs": core.shs.snapshot(),
        "cfc": core.cfc.snapshot(),
        "collector": core.collector.snapshot(),
        "watchdog": core.watchdog.snapshot(),
        "dmem": core.dmem.snapshot(),
        "mem": core.mem.snapshot(),
    }


def _run_steps(core, steps):
    done = 0
    while done < steps and not core.halted:
        core.step()
        done += 1
    return done


@pytest.mark.parametrize("name,at,extra",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
@pytest.mark.parametrize("fault_index", range(len(MUTATING_FAULTS)))
def test_snapshot_mutate_restore_roundtrip(name, at, extra, fault_index):
    """snapshot -> inject+run -> restore is exact for every component."""
    spec, duration = MUTATING_FAULTS[fault_index]
    embedded = _embedded(name)
    injector = None if spec.is_state else SignalInjector(spec)
    core = CheckedCore(embedded, injector=injector, detect=False)
    _run_steps(core, at)
    snap = core.snapshot()
    reference = _full_state(core)

    # Mutate: apply the fault and keep executing.
    if spec.is_state:
        applier = StateFaultApplier(spec, duration)
        applier.apply(core)
        if duration == PERMANENT:
            applier.reassert(core)
    else:
        injector.enable()
    _run_steps(core, extra)
    if injector is not None:
        injector.disable()
    assert _full_state(core) != reference  # the mutation really happened

    core.restore(snap)
    assert _full_state(core) == reference


@pytest.mark.parametrize("name,at,extra",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_restored_core_replays_identically(name, at, extra):
    """A restored core retires the same records as an uninterrupted run."""
    embedded = _embedded(name)
    reference = CheckedCore(embedded, detect=True)
    _run_steps(reference, at)
    tail_reference = [reference.step() for _ in range(extra)
                      if not reference.halted]

    core = CheckedCore(embedded, detect=True)
    _run_steps(core, at)
    snap = core.snapshot()
    _run_steps(core, extra // 2)  # wander off...
    core.restore(snap)  # ...and come back

    # The same snapshot warm-starts a *fresh* core into the identical
    # state - this is precisely what Campaign._warm_start does.
    fresh = CheckedCore(embedded, detect=True).restore(snap)
    assert _full_state(fresh) == _full_state(core)

    tail_restored = [core.step() for _ in range(extra) if not core.halted]
    assert tail_restored == tail_reference
    tail_fresh = [fresh.step() for _ in range(extra) if not fresh.halted]
    assert tail_fresh == tail_reference


@given(at=st.integers(1, 600), fault_index=st.integers(0, len(MUTATING_FAULTS) - 1))
@settings(max_examples=25, deadline=None)
def test_snapshot_roundtrip_property(at, fault_index):
    """Property form on the stress program: any snapshot point, any fault."""
    spec, duration = MUTATING_FAULTS[fault_index]
    embedded = _embedded("stress")
    injector = None if spec.is_state else SignalInjector(spec)
    core = CheckedCore(embedded, injector=injector, detect=False)
    _run_steps(core, at)
    snap = core.snapshot()
    reference = _full_state(core)
    if spec.is_state:
        StateFaultApplier(spec, duration).apply(core)
    else:
        injector.enable()
    _run_steps(core, 64)
    core.restore(snap)
    assert _full_state(core) == reference


class TestCheckpointStore:
    def test_records_interval_boundaries(self):
        core = CheckedCore(_embedded("stress"), detect=True)
        trace = []
        store = record_checkpoints(core, interval=50, max_checkpoints=1000,
                                   trace=trace)
        assert core.halted
        assert store.steps == tuple(range(50, len(trace), 50))
        for step in store.steps:
            assert store.at(step).instret == step

    def test_nearest_picks_floor_checkpoint(self):
        core = CheckedCore(_embedded("stress"), detect=True)
        store = record_checkpoints(core, interval=100, max_checkpoints=1000)
        assert store.nearest(99) is None  # colder than the first snapshot
        assert store.nearest(100).step == 100
        assert store.nearest(199).step == 100
        assert store.nearest(10_000).step == store.steps[-1]

    def test_thinning_bounds_memory_and_doubles_interval(self):
        core = CheckedCore(_embedded("stress"), detect=True)
        store = record_checkpoints(core, interval=4, max_checkpoints=16)
        assert len(store) <= 16
        assert store.interval > 4
        # Survivors sit on multiples of the final interval.
        assert all(step % store.interval == 0 for step in store.steps)

    def test_masking_view_matches_live_projection(self):
        embedded = _embedded("stress")
        core = CheckedCore(embedded, detect=True)
        _run_steps(core, 128)
        assert capture(core).masking_view() == masking_view_of(core)

    def test_restore_free_function_matches_method(self):
        embedded = _embedded("stress")
        core = CheckedCore(embedded, detect=True)
        _run_steps(core, 77)
        snap = capture(core)
        a = restore(CheckedCore(embedded, detect=True), snap)
        b = CheckedCore(embedded, detect=True).restore(snap)
        assert _full_state(a) == _full_state(b)

    def test_rejects_bad_parameters(self):
        # 0/None mean "use the default"; negatives are rejected.
        assert CheckpointStore(interval=0, max_checkpoints=0).interval > 0
        with pytest.raises(ValueError):
            CheckpointStore(interval=-4)
        with pytest.raises(ValueError):
            CheckpointStore(max_checkpoints=-1)


def _result_key(result):
    return (result.quadrant, result.checker, result.detail, result.inject_at,
            result.activated_at, result.hung, result.latency_instructions,
            result.latency_cycles, result.latency_blocks)


DIFFERENTIAL_PROGRAMS = ["small", "stress", "fuzz"]


class TestDifferentialClassification:
    """Checkpoints on vs off: provably identical campaign results."""

    @pytest.mark.parametrize("name", DIFFERENTIAL_PROGRAMS)
    @pytest.mark.parametrize("duration", (TRANSIENT, PERMANENT))
    def test_same_seed_same_results(self, name, duration):
        warm = Campaign(embedded=_embedded(name), seed=41,
                        use_checkpoints=True, checkpoint_interval=32)
        cold = Campaign(embedded=_embedded(name), seed=41,
                        use_checkpoints=False)
        summary_warm = warm.run(experiments=40, duration=duration)
        summary_cold = cold.run(experiments=40, duration=duration)

        assert warm.checkpoints() is not None
        assert cold.checkpoints() is None
        # Identical golden references first (same trace either way).
        assert len(warm.golden_trace()) == len(cold.golden_trace())
        assert warm.golden_trace() == cold.golden_trace()
        # Quadrants, attribution, and per-experiment detail + latencies.
        assert summary_warm.fractions() == summary_cold.fractions()
        assert summary_warm.checker_counts == summary_cold.checker_counts
        assert ([_result_key(r) for r in summary_warm.results]
                == [_result_key(r) for r in summary_cold.results])

    def test_planned_engine_matches_serial_with_checkpoints(self):
        """The planned (pool) path propagates the checkpoint config and
        still produces bit-identical summaries."""
        warm = Campaign(seed=11, use_checkpoints=True)
        cold = Campaign(seed=11, use_checkpoints=False)
        summary_warm = warm.run(experiments=24, duration=TRANSIENT,
                                workers=2, keep_results=False)
        summary_cold = cold.run(experiments=24, duration=TRANSIENT,
                                workers=2, keep_results=False)
        assert summary_warm.fractions() == summary_cold.fractions()
        assert summary_warm.checker_counts == summary_cold.checker_counts

    def test_explicit_inject_points_cover_cold_and_warm_starts(self):
        """inject_at below the first checkpoint falls back to a cold
        start; far beyond it restores - both classify identically."""
        warm = Campaign(seed=5, use_checkpoints=True, checkpoint_interval=64)
        cold = Campaign(seed=5, use_checkpoints=False)
        spec = FaultSpec("ex.alu.result", 1 << 3)
        for inject_at in (0, 5, 63, 64, 65, 400, 600):
            a = warm.run_experiment(spec, TRANSIENT, inject_at=inject_at)
            b = cold.run_experiment(spec, TRANSIENT, inject_at=inject_at)
            assert _result_key(a) == _result_key(b), inject_at


class TestReconvergence:
    def test_masked_state_transient_early_exits(self):
        """An SHS-state transient is invisible to the checkers-off run,
        so the masking run reconverges at the first boundary instead of
        replaying to halt - and still classifies masked."""
        campaign = Campaign(seed=3, use_checkpoints=True,
                            checkpoint_interval=32)
        spec = FaultSpec("state.shs", 1 << 1, index=7, is_state=True)
        masked, activated_at, hung = campaign._masking_run(spec, TRANSIENT, 40)
        assert masked and activated_at is None and not hung

        cold = Campaign(seed=3, use_checkpoints=False)
        assert cold._masking_run(spec, TRANSIENT, 40) == (True, None, False)

    def test_campaign_escape_hatch_disables_stores(self):
        campaign = Campaign(seed=3, use_checkpoints=False)
        campaign.golden_trace()
        assert campaign._checkpoints is None


class TestCli:
    def test_campaign_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "--no-checkpoints", "--checkpoint-interval", "128"])
        assert args.no_checkpoints is True
        assert args.checkpoint_interval == 128
        args = build_parser().parse_args(["campaign"])
        assert args.no_checkpoints is False
        assert args.checkpoint_interval is None
