"""The static analyzer over the full workload suite + corruption matrix.

Two halves of the same contract: every bundled workload's embedded
binary must lint error-free, and seeded corruptions of those same
binaries must each trigger the expected diagnostic code pinned to the
right block.
"""

import pytest

from repro.analysis import analyze_embedded, analyze_program
from repro.argus.payload import payload_positions
from repro.cli import main as cli_main
from repro.isa.decode import decode
from repro.toolchain import embed_program
from repro.workloads import ALL_WORKLOADS, WORKLOADS
from repro.workloads.fuzz import generate_program

WORKLOAD_NAMES = sorted(WORKLOADS)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_every_workload_lints_clean(name):
    report = analyze_embedded(WORKLOADS[name].build_embedded())
    assert report.ok, report.render_text()
    assert not report.warnings, report.render_text()


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_corpus_lints_clean(seed):
    embedded = embed_program(generate_program(seed))
    report = analyze_embedded(embedded)
    assert report.ok, report.render_text()
    # Randomly generated ALU soup legitimately contains dead writes, so
    # ARG018 is expected here; every other warning still fails the gate.
    warnings = [w for w in report.warnings if w.code != "ARG018"]
    assert not warnings, report.render_text()


def test_lint_cli_all_workloads_clean(capsys):
    assert cli_main(["lint", "--all-workloads"]) == 0
    out = capsys.readouterr().out
    for workload in ALL_WORKLOADS:
        assert "%s: clean" % workload.name in out


class TestCorruptionMatrix:
    """Seeded mutations of real embedded workloads, one code each."""

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_flipped_payload_bit_is_arg010(self, name):
        embedded = WORKLOADS[name].build_embedded()
        program = embedded.program
        block = next(b for b in embedded.blocks.values() if b.fields)
        flipped = False
        for addr in range(block.start, block.end, 4):
            word = program.word_at(addr)
            positions = payload_positions(decode(word).op)
            if positions:
                program.set_word(addr, word ^ (1 << positions[0]))
                flipped = True
                break
        assert flipped, "no spare-bit word in the first field-bearing block"
        report = analyze_program(program,
                                 expected_entry_dcs=embedded.entry_dcs)
        mismatch = report.by_code("ARG010")
        assert mismatch, report.render_text()
        assert mismatch[0].block == block.start

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_truncated_block_is_arg004(self, name):
        embedded = WORKLOADS[name].build_embedded()
        embedded.program.words.pop()
        report = analyze_program(embedded.program,
                                 expected_entry_dcs=embedded.entry_dcs)
        truncated = report.by_code("ARG004")
        assert truncated, report.render_text()
        last_block = max(b.start for b in embedded.blocks.values())
        assert truncated[0].block == last_block

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_undecodable_word_is_arg001(self, name):
        embedded = WORKLOADS[name].build_embedded()
        program = embedded.program
        victim = program.text_base + 4
        program.set_word(victim, 0xFFFFFFFF)
        report = analyze_program(program,
                                 expected_entry_dcs=embedded.entry_dcs)
        bad = report.by_code("ARG001")
        assert bad, report.render_text()
        assert bad[0].address == victim

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_wrong_entry_dcs_is_arg012(self, name):
        embedded = WORKLOADS[name].build_embedded()
        report = analyze_program(embedded.program,
                                 expected_entry_dcs=embedded.entry_dcs ^ 0x1F)
        entry = report.by_code("ARG012")
        assert entry, report.render_text()
        assert entry[0].block == embedded.program.entry

    def test_corrupted_codeptr_tag_is_arg011(self):
        # The fuzz generator emits .codeptr jump tables; find a seed
        # that uses one and corrupt the tag bits of its first site.
        for seed in range(16):
            embedded = embed_program(generate_program(seed))
            if embedded.program.codeptr_sites:
                break
        else:
            pytest.skip("no fuzz seed with a .codeptr site in range")
        program = embedded.program
        site, _label = program.codeptr_sites[0]
        offset = site - program.data_base
        pointer = int.from_bytes(program.data[offset:offset + 4], "little")
        program.data[offset:offset + 4] = \
            (pointer ^ (1 << 29)).to_bytes(4, "little")
        report = analyze_program(program,
                                 expected_entry_dcs=embedded.entry_dcs)
        tag = report.by_code("ARG011")
        assert tag, report.render_text()
        assert tag[0].address == site

    def test_distinct_code_coverage_floor(self):
        """One scripted battery must statically detect >= 6 distinct codes."""
        from repro.asm import assemble, parse

        detected = set()

        embedded = WORKLOADS["adpcm_enc"].build_embedded()
        embedded.program.set_word(embedded.program.text_base + 4, 0xFFFFFFFF)
        detected |= analyze_program(embedded.program).codes()  # ARG001

        embedded = WORKLOADS["adpcm_enc"].build_embedded()
        embedded.program.words.pop()
        detected |= analyze_program(embedded.program).codes()  # ARG004

        embedded = WORKLOADS["adpcm_enc"].build_embedded()
        detected |= analyze_program(
            embedded.program,
            expected_entry_dcs=embedded.entry_dcs ^ 1).codes()  # ARG012

        synthetic = {
            "start: j 3\nnop\nj 2\nnop\nhalt",  # ARG002 (+ARG005)
            "start:\n%s\nhalt" % "\n".join(
                "add r1, r1, r2" for _ in range(30)),  # ARG003
            "start: addi r1, r0, 1\naddi r1, r1, 1\nj -1\nnop\nhalt",  # ARG007
            "start: j 100\nnop\nhalt",  # ARG008
        }
        for source in synthetic:
            detected |= analyze_program(assemble(parse(source)),
                                        check_signatures=False).codes()
        assert len(detected) >= 6, sorted(detected)
