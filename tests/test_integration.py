"""End-to-end integration tests: stress test, detection-latency claims,
and the cross-checker composition the paper's coverage rests on."""

import pytest

from repro.cpu import CheckedCore, FastCore
from repro.asm import assemble, parse
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT, FaultSpec
from repro.faults.stress import build_stress_program, stress_test_source


@pytest.fixture(scope="module")
def stress():
    return build_stress_program()


@pytest.fixture(scope="module")
def campaign(stress):
    return Campaign(embedded=stress, seed=5)


class TestStressProgram:
    def test_checked_run_is_clean(self, stress):
        core = CheckedCore(stress, detect=True)
        result = core.run()
        assert result.halted
        assert result.blocks_checked > 50

    def test_base_and_embedded_checksums_match(self, stress):
        base = assemble(parse(stress_test_source()))
        fast = FastCore(base)
        fast.run()
        checked = CheckedCore(stress, detect=True)
        checked.run()
        result_addr = stress.program.addr_of("result")
        base_addr = base.addr_of("result")
        assert checked.load_word(result_addr) == fast.load_word(base_addr)
        assert checked.load_word(result_addr + 4) == fast.load_word(base_addr + 4)

    def test_broad_instruction_coverage(self):
        """The stress test exercises the instruction classes the paper
        lists: ALU, shifts, extensions, mul/div, all load/store widths,
        compares, calls and indirect jumps."""
        base = assemble(parse(stress_test_source()))
        core = FastCore(base, collect_histogram=True)
        result = core.run()
        mnemonics = {name.lower() for name in result.op_histogram}
        for required in ("mul", "mulu", "div", "divu", "lwz", "lhz", "lhs",
                         "lbz", "lbs", "sw", "sh", "sb", "jal", "jr", "bf",
                         "bnf", "exths", "extbs", "sll", "sra", "j"):
            assert required in mnemonics, required

    def test_stress_uses_most_registers(self):
        base = assemble(parse(stress_test_source()))
        core = FastCore(base)
        core.run()
        nonzero = sum(1 for value in core.regs[1:] if value != 0)
        assert nonzero >= 25


class TestDetectionLatencyClaims:
    """Sec 4.2's ordering: computation errors are caught at the faulty
    instruction; dataflow/control-flow errors by the next block boundary;
    stored-memory errors only at the next load of the bad word."""

    def test_computation_immediate(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.alu.result", 1 << 9), PERMANENT, inject_at=0)
        assert result.detected
        assert result.latency_instructions <= 2

    def test_control_flow_within_two_blocks(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ctl.btarget", 1 << 6), PERMANENT, inject_at=0)
        assert result.detected
        assert result.latency_blocks <= 2

    def test_shs_damage_caught_at_block_end(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.shs_a", 1), PERMANENT, inject_at=0)
        assert result.detected
        assert result.checker == "dcs"
        assert result.latency_blocks <= 1

    def test_memory_latency_can_exceed_a_block(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("lsu.store_data", 1 << 13), PERMANENT, inject_at=0)
        if result.detected:  # value must be reloaded to be caught
            assert result.checker in ("memory", "parity")


class TestCampaignShape:
    """Coarse Table 1 shape on a small sample: silent corruptions rare,
    detected errors dominant among unmasked, plenty of masking."""

    def test_transient_shape(self, campaign):
        summary = campaign.run(experiments=150, duration=TRANSIENT)
        fractions = summary.fractions()
        assert fractions["unmasked_undetected"] < 0.06
        assert fractions["unmasked_detected"] > 0.25
        assert fractions["masked_undetected"] + fractions["masked_detected"] > 0.40
        assert summary.unmasked_coverage > 0.90

    def test_composition_of_checkers_needed(self, campaign):
        """Sec 4.1.1: no single checker dominates completely - the
        composition is what yields the coverage."""
        summary = campaign.run(experiments=150, duration=TRANSIENT)
        assert len(summary.checker_counts) >= 3
        total = sum(summary.checker_counts.values())
        assert max(summary.checker_counts.values()) / total < 0.8
