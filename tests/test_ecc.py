"""Tests for the SEC-DED (Hamming 39,32 + parity) protected memory."""

from hypothesis import given, strategies as st

from repro.mem.ecc import EccMemory, decode_secded, encode_secded

WORDS = st.integers(0, 0xFFFFFFFF)


class TestCode:
    def test_clean_roundtrip(self):
        codeword, overall = encode_secded(0xDEADBEEF)
        decoded = decode_secded(codeword, overall)
        assert decoded.value == 0xDEADBEEF
        assert not decoded.corrected
        assert not decoded.detected_uncorrectable

    def test_every_single_bit_error_corrected(self):
        codeword, overall = encode_secded(0x12345678)
        for bit in range(1, 39):
            decoded = decode_secded(codeword ^ (1 << bit), overall)
            assert decoded.corrected, bit
            assert decoded.value == 0x12345678, bit
            assert not decoded.detected_uncorrectable

    def test_overall_parity_bit_error_corrected(self):
        codeword, overall = encode_secded(0x12345678)
        decoded = decode_secded(codeword, overall ^ 1)
        assert decoded.corrected
        assert decoded.value == 0x12345678

    def test_every_double_bit_error_detected(self):
        codeword, overall = encode_secded(0xCAFEBABE)
        for a in range(1, 39, 5):
            for b in range(a + 1, 39, 7):
                decoded = decode_secded(codeword ^ (1 << a) ^ (1 << b), overall)
                assert decoded.detected_uncorrectable, (a, b)
                assert not decoded.corrected


class TestEccMemory:
    def test_store_load(self):
        memory = EccMemory()
        memory.store_word(0x100, 0x11223344)
        decoded = memory.load_word(0x100)
        assert decoded.value == 0x11223344
        assert not decoded.corrected

    def test_unwritten_reads_zero(self):
        assert EccMemory().load_word(0x500).value == 0

    def test_single_bit_fault_corrected_and_scrubbed(self):
        memory = EccMemory()
        memory.store_word(0x100, 0xABCD)
        memory.corrupt_stored_bit(0x100, 7)
        first = memory.load_word(0x100)
        assert first.value == 0xABCD
        assert first.corrected
        assert memory.corrections == 1
        # Scrub-on-correct repaired the stored word.
        second = memory.load_word(0x100)
        assert second.value == 0xABCD
        assert not second.corrected

    def test_double_bit_fault_detected(self):
        memory = EccMemory()
        memory.store_word(0x100, 0xABCD)
        memory.corrupt_stored_bit(0x100, 3)
        memory.corrupt_stored_bit(0x100, 11)
        decoded = memory.load_word(0x100)
        assert decoded.detected_uncorrectable
        assert memory.uncorrectable == 1

    def test_overall_parity_fault(self):
        memory = EccMemory()
        memory.store_word(0x100, 5)
        memory.corrupt_overall_parity(0x100)
        decoded = memory.load_word(0x100)
        assert decoded.value == 5
        assert decoded.corrected

    def test_address_embedding_preserved(self):
        """Same value at two addresses stores differently (D XOR A)."""
        memory = EccMemory()
        memory.store_word(0x100, 0x777)
        memory.store_word(0x200, 0x777)
        assert memory._stored[0x100] != memory._stored[0x200]
        assert memory.load_word(0x100).value == 0x777
        assert memory.load_word(0x200).value == 0x777


@given(value=WORDS)
def test_roundtrip_property(value):
    codeword, overall = encode_secded(value)
    assert decode_secded(codeword, overall).value == value


@given(value=WORDS, bit=st.integers(1, 38))
def test_correction_property(value, bit):
    codeword, overall = encode_secded(value)
    decoded = decode_secded(codeword ^ (1 << bit), overall)
    assert decoded.corrected
    assert decoded.value == value


@given(value=WORDS, a=st.integers(1, 38), b=st.integers(1, 38))
def test_double_detection_property(value, a, b):
    if a == b:
        return
    codeword, overall = encode_secded(value)
    decoded = decode_secded(codeword ^ (1 << a) ^ (1 << b), overall)
    assert decoded.detected_uncorrectable
