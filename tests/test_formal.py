"""Empirical verification of Appendix A on the abstract machine.

Two directions of the paper's theorem, tested on random programs:

* **Soundness of the induction**: the correct trace satisfies every
  checker condition, and any trace satisfying every condition reaches
  the correct final state.
* **Completeness**: any single mutation of the trace that changes the
  final architectural state violates at least one checker condition -
  ideal checkers admit no silent corruption.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal import (
    AbstractInstruction,
    MUTATION_KINDS,
    check_trace,
    correct_trace,
    mutate_trace,
    random_program,
)
from repro.formal.machine import MEM_SIZE, NUM_REGS


def _trace(seed, length=12):
    rng = random.Random(seed)
    program = random_program(rng, length=length)
    initial_regs = [rng.randrange(0xFFFF) for _ in range(NUM_REGS)]
    initial_mem = [rng.randrange(0xFFFF) for _ in range(MEM_SIZE)]
    return correct_trace(program, initial_regs, initial_mem)


class TestCorrectExecution:
    def test_simple_program_checks_clean(self):
        program = [
            AbstractInstruction("const", output=1, imm=5),
            AbstractInstruction("const", output=2, imm=7),
            AbstractInstruction("add", inputs=(1, 2), output=3),
            AbstractInstruction("store", inputs=(0, 3), imm=4),
            AbstractInstruction("load", inputs=(0,), output=4, imm=4),
        ]
        trace = correct_trace(program)
        assert check_trace(trace).ok
        regs, mem = trace.final_state()
        assert regs[3] == 12
        assert mem[4] == 12
        assert regs[4] == 12

    def test_final_state_matches_machine(self):
        trace = _trace(7)
        regs, mem = trace.final_state()
        assert len(regs) == NUM_REGS and len(mem) == MEM_SIZE


class TestMutationAttribution:
    """Each error class trips the checker Appendix A assigns to it."""

    def _mutated(self, kind, seed=0):
        rng = random.Random(seed)
        for attempt in range(50):
            trace = _trace(rng.randrange(1 << 30))
            mutated = mutate_trace(trace, kind, rng)
            if mutated is not None:
                return trace, mutated
        pytest.skip("no applicable mutation site found")

    def test_flip_input_value_trips_value_checkers(self):
        __, mutated = self._mutated("flip_input_value")
        result = check_trace(mutated)
        assert result.violated("DFC_V") or result.violated("MFC_V") \
            or result.violated("CC")

    def test_redirect_input_edge_trips_shape_checker(self):
        __, mutated = self._mutated("redirect_input_edge")
        assert check_trace(mutated).violated("DFC_S")

    def test_flip_output_value_trips_computation_checker(self):
        __, mutated = self._mutated("flip_output_value")
        assert check_trace(mutated).violated("CC")

    def test_redirect_output_edge_trips_shape_checkers(self):
        __, mutated = self._mutated("redirect_output_edge")
        result = check_trace(mutated)
        assert result.violated("DFC_S") or result.violated("MFC_S")

    def test_swap_specification_trips_control_flow(self):
        __, mutated = self._mutated("swap_specification")
        assert check_trace(mutated).violated("CFC")

    def test_drop_instruction_trips_control_flow(self):
        __, mutated = self._mutated("drop_instruction")
        assert check_trace(mutated).violated("CFC")


@given(seed=st.integers(0, 1 << 30))
@settings(max_examples=100, deadline=None)
def test_correct_traces_always_pass(seed):
    assert check_trace(_trace(seed)).ok


@given(seed=st.integers(0, 1 << 30),
       kind=st.sampled_from(MUTATION_KINDS),
       mutation_seed=st.integers(0, 1 << 30))
@settings(max_examples=300, deadline=None)
def test_completeness_no_silent_corruption(seed, kind, mutation_seed):
    """THE theorem: a mutated execution whose final state differs from
    the correct one violates at least one ideal checker condition."""
    trace = _trace(seed)
    mutated = mutate_trace(trace, kind, random.Random(mutation_seed))
    if mutated is None:
        return
    if mutated.final_state() == trace.final_state():
        return  # masked error: no detection obligation
    assert not check_trace(mutated).ok


@given(seed=st.integers(0, 1 << 30),
       kind=st.sampled_from(MUTATION_KINDS),
       mutation_seed=st.integers(0, 1 << 30))
@settings(max_examples=300, deadline=None)
def test_soundness_passing_traces_are_correct(seed, kind, mutation_seed):
    """The contrapositive: any trace that satisfies all conditions
    computes exactly the correct final state."""
    trace = _trace(seed)
    mutated = mutate_trace(trace, kind, random.Random(mutation_seed))
    if mutated is None:
        return
    if check_trace(mutated).ok:
        assert mutated.final_state() == trace.final_state()
