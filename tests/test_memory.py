"""Unit tests for main memory, caches and the memory system."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Cache, CacheConfig
from repro.mem.hierarchy import MemoryConfig, MemorySystem
from repro.mem.main import MainMemory, MisalignedAccess


class TestMainMemory:
    def test_default_zero(self):
        mem = MainMemory()
        assert mem.read_word(0x1234 & ~3) == 0
        assert mem.read_byte(99) == 0

    def test_word_roundtrip(self):
        mem = MainMemory()
        mem.write_word(0x100, 0xDEADBEEF)
        assert mem.read_word(0x100) == 0xDEADBEEF

    def test_little_endian_layout(self):
        mem = MainMemory()
        mem.write_word(0x40, 0x11223344)
        assert mem.read_byte(0x40) == 0x44
        assert mem.read_byte(0x43) == 0x11

    def test_half_roundtrip(self):
        mem = MainMemory()
        mem.write_half(0x10, 0xABCD)
        assert mem.read_half(0x10) == 0xABCD
        assert mem.read_word(0x10) == 0xABCD

    def test_misaligned_word_rejected(self):
        mem = MainMemory()
        with pytest.raises(MisalignedAccess):
            mem.read_word(0x101)
        with pytest.raises(MisalignedAccess):
            mem.write_half(0x101, 1)

    def test_cross_page_block(self):
        mem = MainMemory()
        mem.write_block(0xFFE, b"\x01\x02\x03\x04")
        assert mem.read_block(0xFFE, 4) == b"\x01\x02\x03\x04"

    def test_address_wraps_to_27_bits(self):
        mem = MainMemory()
        mem.write_word(0x8000000 | 0x100, 42)  # bit 27 ignored
        assert mem.read_word(0x100) == 42

    def test_snapshot_compare(self):
        mem = MainMemory()
        mem.write_word(0x100, 7)
        snap = mem.snapshot()
        assert mem.equals_snapshot(snap)
        mem.write_byte(0x100, 8)
        assert not mem.equals_snapshot(snap)

    def test_snapshot_treats_untouched_pages_as_zero(self):
        mem = MainMemory()
        snap = mem.snapshot()
        mem.write_word(0x100, 0)  # touches a page but stays zero
        assert mem.equals_snapshot(snap)


class TestCacheConfig:
    def test_paper_geometry(self):
        config = CacheConfig(size_bytes=8192, line_bytes=16, ways=1)
        assert config.num_sets == 512
        config = CacheConfig(size_bytes=8192, line_bytes=16, ways=2)
        assert config.num_sets == 256

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=16, ways=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=8192, line_bytes=24, ways=1)


class TestCache:
    def make(self, ways=1):
        return Cache(CacheConfig(size_bytes=256, line_bytes=16, ways=ways,
                                 hit_cycles=1, miss_penalty=20))

    def test_first_access_misses_then_hits(self):
        cache = self.make()
        assert cache.access(0x100) == 21
        assert cache.access(0x104) == 1  # same line
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_direct_mapped_conflict(self):
        cache = self.make(ways=1)
        cache.access(0x000)
        cache.access(0x100)  # 256 bytes apart: same set in a 256B cache
        assert cache.access(0x000) == 21  # evicted

    def test_two_way_absorbs_pairwise_conflict(self):
        cache = self.make(ways=2)
        cache.access(0x000)
        cache.access(0x100)
        assert cache.access(0x000) == 1
        assert cache.access(0x100) == 1

    def test_lru_eviction_order(self):
        cache = self.make(ways=2)
        cache.access(0x000)
        cache.access(0x100)
        cache.access(0x000)  # touch: 0x100 becomes LRU
        cache.access(0x200)  # evicts 0x100
        assert cache.probe(0x000)
        assert not cache.probe(0x100)

    def test_writeback_counted_on_dirty_eviction(self):
        cache = self.make(ways=1)
        cache.access(0x000, is_write=True)
        cache.access(0x100)  # evicts dirty line
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = self.make(ways=1)
        cache.access(0x000)
        cache.access(0x100)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        cache = self.make(ways=1)
        cache.access(0x000)
        cache.access(0x004, is_write=True)  # write hit dirties the line
        cache.access(0x100)
        assert cache.stats.writebacks == 1

    def test_probe_does_not_change_state(self):
        cache = self.make()
        cache.access(0x000)
        before = cache.stats.accesses
        assert cache.probe(0x000)
        assert not cache.probe(0x500)
        assert cache.stats.accesses == before

    def test_flush(self):
        cache = self.make()
        cache.access(0x000, is_write=True)
        assert cache.flush() == 1
        assert not cache.probe(0x000)
        assert cache.occupancy() == 0

    def test_miss_rate(self):
        cache = self.make()
        cache.access(0x000)
        cache.access(0x000)
        assert cache.stats.miss_rate == 0.5


class TestMemorySystem:
    def test_fetch_returns_word_and_latency(self):
        system = MemorySystem(MemoryConfig.paper(ways=1))
        system.memory.write_word(0x1000, 0xCAFEBABE)
        word, latency = system.fetch(0x1000)
        assert word == 0xCAFEBABE
        assert latency == 21
        __, latency = system.fetch(0x1000)
        assert latency == 1

    def test_store_then_load(self):
        system = MemorySystem()
        system.store_word(0x2000, 77)
        value, __ = system.load_word(0x2000)
        assert value == 77

    def test_sub_word_access(self):
        system = MemorySystem()
        system.store_byte(0x2001, 0xAB)
        value, __ = system.load_byte(0x2001)
        assert value == 0xAB
        system.store_half(0x2004, 0x1234)
        value, __ = system.load_half(0x2004)
        assert value == 0x1234

    def test_icache_dcache_independent(self):
        system = MemorySystem()
        system.fetch(0x1000)
        system.load_word(0x1000)
        assert system.icache.stats.misses == 1
        assert system.dcache.stats.misses == 1

    def test_reset_stats(self):
        system = MemorySystem()
        system.fetch(0x1000)
        system.reset_stats()
        assert system.icache.stats.accesses == 0


@given(addresses=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
def test_cache_against_reference_model(addresses):
    """Property: the cache's hit/miss sequence matches a simple LRU model."""
    config = CacheConfig(size_bytes=512, line_bytes=16, ways=2, hit_cycles=1,
                         miss_penalty=10)
    cache = Cache(config)
    model = {}  # set index -> list of tags, MRU first
    for address in addresses:
        line = address >> 4
        index = line % config.num_sets
        tags = model.setdefault(index, [])
        expected_hit = line in tags
        latency = cache.access(address)
        assert (latency == 1) == expected_hit
        if expected_hit:
            tags.remove(line)
        elif len(tags) >= 2:
            tags.pop()
        tags.insert(0, line)
