"""Unit tests for the control-flow checker state machine and errors."""

import pytest

from repro.argus.controlflow import ControlFlowChecker
from repro.argus.errors import (
    ArgusError,
    ControlFlowError,
    DetectionEvent,
    CHECKER_CONTROL_FLOW,
)


class TestBlockEnd:
    def test_match_advances_to_selected_successor(self):
        cfc = ControlFlowChecker(entry_dcs=0x0A)
        nxt = cfc.block_end(0x0A, "jump", {"target": 0x15})
        assert nxt == 0x15
        assert cfc.expected == 0x15
        assert cfc.blocks_checked == 1

    def test_mismatch_raises_with_context(self):
        cfc = ControlFlowChecker(entry_dcs=0x0A)
        with pytest.raises(ControlFlowError) as err:
            cfc.block_end(0x0B, "jump", {"target": 0}, pc=0x1234, cycle=99)
        event = err.value.event
        assert event.checker == CHECKER_CONTROL_FLOW
        assert event.pc == 0x1234
        assert event.cycle == 99

    def test_conditional_selection_by_checker_flag(self):
        cfc = ControlFlowChecker(entry_dcs=1)
        fields = {"taken": 0x11, "fallthrough": 0x07}
        assert cfc.block_end(1, "cond", dict(fields), taken=True) == 0x11
        cfc2 = ControlFlowChecker(entry_dcs=1)
        assert cfc2.block_end(1, "cond", dict(fields), taken=False) == 0x07

    def test_conditional_requires_direction(self):
        cfc = ControlFlowChecker(entry_dcs=1)
        with pytest.raises(ValueError):
            cfc.block_end(1, "cond", {"taken": 1, "fallthrough": 2})

    def test_indirect_uses_register_dcs(self):
        cfc = ControlFlowChecker(entry_dcs=3)
        assert cfc.block_end(3, "indirect", {}, indirect_dcs=0x1C) == 0x1C

    def test_indirect_requires_register_dcs(self):
        cfc = ControlFlowChecker(entry_dcs=3)
        with pytest.raises(ValueError):
            cfc.block_end(3, "indirect", {})

    def test_call_selects_callee(self):
        cfc = ControlFlowChecker(entry_dcs=2)
        assert cfc.block_end(2, "call", {"target": 9, "link": 4}) == 9

    def test_fallthrough(self):
        cfc = ControlFlowChecker(entry_dcs=2)
        assert cfc.block_end(2, "fallthrough", {"next": 0x1F}) == 0x1F

    def test_halt_clears_expectation(self):
        cfc = ControlFlowChecker(entry_dcs=2)
        assert cfc.block_end(2, "halt", {}) is None
        assert cfc.expected is None

    def test_unknown_kind(self):
        cfc = ControlFlowChecker(entry_dcs=2)
        with pytest.raises(ValueError):
            cfc.block_end(2, "bogus", {})

    def test_chained_blocks(self):
        cfc = ControlFlowChecker(entry_dcs=5)
        cfc.block_end(5, "jump", {"target": 7})
        cfc.block_end(7, "fallthrough", {"next": 9})
        cfc.block_end(9, "halt", {})
        assert cfc.blocks_checked == 3

    def test_corrupt_expected_latch(self):
        cfc = ControlFlowChecker(entry_dcs=0)
        cfc.corrupt_expected(0)
        with pytest.raises(ControlFlowError):
            cfc.block_end(0, "halt", {})

    def test_checker_internal_tap_fault_false_alarms(self):
        def tap(name, value):
            return value ^ 1 if name == "cfc.computed" else value

        cfc = ControlFlowChecker(entry_dcs=4, tap=tap)
        with pytest.raises(ControlFlowError):
            cfc.block_end(4, "halt", {})


class TestErrorTypes:
    def test_event_string(self):
        event = DetectionEvent("dcs", "mismatch", pc=0x10, cycle=5)
        assert "dcs" in str(event)
        assert "0x10" in str(event)

    def test_argus_error_hierarchy(self):
        error = ControlFlowError("x", pc=1, cycle=2, instret=3, block_index=4)
        assert isinstance(error, ArgusError)
        assert error.event.block_index == 4
        assert error.event.detail == "x"
