"""Unit tests for the disassembler (and its encode round-trips)."""

from repro.asm import assemble, disassemble_program, disassemble_word, parse
from repro.isa.encoding import encode
from repro.isa.opcodes import Cond, Op


class TestDisassembleWord:
    def test_simple_ops(self):
        assert disassemble_word(encode(Op.NOP)) == "nop"
        assert disassemble_word(encode(Op.HALT)) == "halt"
        assert disassemble_word(encode(Op.SIG)) == "sig"

    def test_alu(self):
        assert disassemble_word(encode(Op.ADD, rd=1, ra=2, rb=3)) == "add r1, r2, r3"
        assert disassemble_word(encode(Op.EXTBS, rd=4, ra=5)) == "extbs r4, r5"

    def test_immediates(self):
        assert disassemble_word(encode(Op.ADDI, rd=1, ra=0, imm=-7)) == "addi r1, r0, -7"
        assert disassemble_word(encode(Op.SRAI, rd=2, ra=3, shamt=4)) == "srai r2, r3, 4"
        assert disassemble_word(encode(Op.MOVHI, rd=1, imm=0xBEEF)) == "movhi r1, 0xbeef"

    def test_memory_ops(self):
        assert disassemble_word(encode(Op.LWZ, rd=1, ra=2, imm=8)) == "lwz r1, 8(r2)"
        assert disassemble_word(encode(Op.SB, ra=3, rb=4, imm=-1)) == "sb r4, -1(r3)"

    def test_branches_show_absolute_target(self):
        word = encode(Op.BF, offset=-2)
        assert disassemble_word(word, address=0x1010) == "bf 0x1008"
        assert disassemble_word(encode(Op.JR, rb=9)) == "jr r9"

    def test_compares(self):
        assert disassemble_word(encode(Op.SF, ra=1, rb=2, cond=Cond.GTU)) == "sfgtu r1, r2"
        assert disassemble_word(encode(Op.SFI, ra=1, imm=5, cond=Cond.EQ)) == "sfeqi r1, 5"

    def test_invalid_word_renders_as_data(self):
        assert disassemble_word(0xFFFFFFFF).startswith(".word")


class TestDisassembleProgram:
    def test_labels_and_order(self):
        program = assemble(parse("start: nop\nloop: j loop\nnop"))
        lines = disassemble_program(program)
        texts = [text for *_head, text in lines]
        assert "start:" in texts
        assert "loop:" in texts
        assert any("j 0x1004" in text for text in texts)

    def test_roundtrip_through_assembler(self):
        """Disassembled text re-assembles to the identical words."""
        source = """
start:  li r1, 42
        add r2, r1, r1
        sw r2, 0(r1)
        sfeqi r2, 84
        bf done
        nop
done:   halt
"""
        program = assemble(parse(source))
        reassembled = []
        for address, word, text in disassemble_program(program):
            if word is None:
                reassembled.append(text)
            else:
                # Branch targets disassemble as absolute addresses; keep
                # this round-trip to non-branch instructions.
                if text.strip().split()[0] in ("bf", "bnf", "j", "jal"):
                    continue
                reassembled.append(text)
        retext = "\n".join(reassembled) + "\nhalt"
        assemble(parse(retext))  # must parse and encode cleanly
