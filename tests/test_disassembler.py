"""Unit tests for the disassembler (and its encode round-trips)."""

import pytest

from repro.asm import assemble, disassemble_program, disassemble_word, parse
from repro.asm.disassembler import decode_text, disassemble_to_source
from repro.isa.encoding import encode
from repro.isa.opcodes import Cond, Op


class TestDisassembleWord:
    def test_simple_ops(self):
        assert disassemble_word(encode(Op.NOP)) == "nop"
        assert disassemble_word(encode(Op.HALT)) == "halt"
        assert disassemble_word(encode(Op.SIG)) == "sig"

    def test_alu(self):
        assert disassemble_word(encode(Op.ADD, rd=1, ra=2, rb=3)) == "add r1, r2, r3"
        assert disassemble_word(encode(Op.EXTBS, rd=4, ra=5)) == "extbs r4, r5"

    def test_immediates(self):
        assert disassemble_word(encode(Op.ADDI, rd=1, ra=0, imm=-7)) == "addi r1, r0, -7"
        assert disassemble_word(encode(Op.SRAI, rd=2, ra=3, shamt=4)) == "srai r2, r3, 4"
        assert disassemble_word(encode(Op.MOVHI, rd=1, imm=0xBEEF)) == "movhi r1, 0xbeef"

    def test_memory_ops(self):
        assert disassemble_word(encode(Op.LWZ, rd=1, ra=2, imm=8)) == "lwz r1, 8(r2)"
        assert disassemble_word(encode(Op.SB, ra=3, rb=4, imm=-1)) == "sb r4, -1(r3)"

    def test_branches_show_absolute_target(self):
        word = encode(Op.BF, offset=-2)
        assert disassemble_word(word, address=0x1010) == "bf 0x1008"
        assert disassemble_word(encode(Op.JR, rb=9)) == "jr r9"

    def test_compares(self):
        assert disassemble_word(encode(Op.SF, ra=1, rb=2, cond=Cond.GTU)) == "sfgtu r1, r2"
        assert disassemble_word(encode(Op.SFI, ra=1, imm=5, cond=Cond.EQ)) == "sfeqi r1, 5"

    def test_invalid_word_renders_as_data(self):
        assert disassemble_word(0xFFFFFFFF).startswith(".word")


class TestDisassembleProgram:
    def test_labels_and_order(self):
        program = assemble(parse("start: nop\nloop: j loop\nnop"))
        lines = disassemble_program(program)
        texts = [text for *_head, text in lines]
        assert "start:" in texts
        assert "loop:" in texts
        assert any("j 0x1004" in text for text in texts)

    def test_roundtrip_through_assembler(self):
        """Disassembled text re-assembles to the identical words."""
        source = """
start:  li r1, 42
        add r2, r1, r1
        sw r2, 0(r1)
        sfeqi r2, 84
        bf done
        nop
done:   halt
"""
        program = assemble(parse(source))
        reassembled = []
        for address, word, text in disassemble_program(program):
            if word is None:
                reassembled.append(text)
            else:
                # Branch targets disassemble as absolute addresses; keep
                # this round-trip to non-branch instructions.
                if text.strip().split()[0] in ("bf", "bnf", "j", "jal"):
                    continue
                reassembled.append(text)
        retext = "\n".join(reassembled) + "\nhalt"
        assemble(parse(retext))  # must parse and encode cleanly


def canonical_words(program):
    """Text words with the spare (payload) bits cleared.

    Assembly source cannot express packed successor-DCS payloads - the
    spare bits are, by construction, ignored by the decoder - so a
    source-level round trip reproduces exactly the canonical words (the
    ones the SHS/DCS computation hashes)."""
    from repro.argus.payload import payload_positions
    from repro.isa.decode import decode

    out = []
    for word in program.words:
        mask = 0
        for position in payload_positions(decode(word).op):
            mask |= 1 << position
        out.append(word & ~mask)
    return out


def assert_roundtrip(program, canonical=False):
    """assemble(parse(disassemble_to_source(p))) is word- and data-identical.

    With ``canonical=True`` (embedded binaries) the comparison is over
    the canonical words instead - see :func:`canonical_words`."""
    source = disassemble_to_source(program)
    again = assemble(parse(source), text_base=program.text_base,
                     data_base=program.data_base)
    if canonical:
        assert again.words == canonical_words(program)
    else:
        assert again.words == program.words
    assert bytes(again.data) == bytes(program.data)
    assert again.entry == program.entry


class TestDecodeText:
    def test_yields_one_item_per_word(self):
        program = assemble(parse("start: nop\nadd r1, r2, r3\nhalt"))
        items = decode_text(program)
        assert len(items) == len(program.words)
        assert [a for a, _, _ in items] == \
            list(range(program.text_base, program.text_end, 4))

    def test_undecodable_word_becomes_none(self):
        program = assemble(parse("start: nop\nhalt"))
        program.words[0] = 0xFFFFFFFF
        items = decode_text(program)
        assert items[0][2] is None
        assert items[1][2] is not None


class TestRoundtripProperty:
    """Full source-level round trip: the reproduced binary is identical."""

    def test_simple_program(self):
        source = """
start:  li r1, 42
        la r6, buf
loop:   addi r1, r1, -1
        sw r1, 0(r6)
        sfgtsi r1, 0
        bf loop
        nop
        halt
        .data
buf:    .word 0xDEADBEEF
        .byte 1, 2, 3
"""
        assert_roundtrip(assemble(parse(source)))

    def test_undecodable_word_raises(self):
        program = assemble(parse("start: nop\nhalt"))
        program.words[0] = 0xFFFFFFFF
        with pytest.raises(ValueError):
            disassemble_to_source(program)

    def test_all_workloads_roundtrip(self):
        from repro.workloads import ALL_WORKLOADS

        for workload in ALL_WORKLOADS:
            assert_roundtrip(workload.build_base())

    def test_embedded_workloads_roundtrip_canonically(self):
        """Embedded binaries round-trip to their canonical words: the
        mnemonics, Signature T bits and tagged jump-table data all
        survive the source form; only the packed spare-bit payload
        (inexpressible in assembly) is cleared."""
        from repro.workloads import WORKLOADS

        for name in ("adpcm_enc", "epic", "jpeg_dec"):
            assert_roundtrip(WORKLOADS[name].build_embedded().program,
                             canonical=True)

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_corpus_roundtrip(self, seed):
        from repro.toolchain import embed_program
        from repro.workloads.fuzz import generate_program

        source = generate_program(seed)
        assert_roundtrip(assemble(parse(source)))
        assert_roundtrip(embed_program(source).program, canonical=True)
