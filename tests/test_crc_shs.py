"""Unit tests for CRC5, the SHS file and the SHS transfer function."""

from hypothesis import given, strategies as st

from repro.argus import crc
from repro.argus.shs import (
    LOC_FLAG,
    LOC_MEM,
    LOC_PC,
    NUM_LOCATIONS,
    ShsFile,
    apply_instruction,
    canonical_word,
    initial_shs,
    op_identifier,
    shs_combine,
)
from repro.isa.encoding import encode, set_spare_bits
from repro.isa.decode import decode
from repro.isa.opcodes import Cond, Op
from repro.isa.registers import LINK_REG


class TestCrc5:
    def test_width(self):
        for value in range(256):
            assert 0 <= crc.crc5_byte(0, value) < 32

    def test_deterministic(self):
        assert crc.crc5_word(0xDEADBEEF) == crc.crc5_word(0xDEADBEEF)

    def test_sensitive_to_every_bit(self):
        base = crc.crc5_word(0x12345678)
        changed = sum(1 for bit in range(32)
                      if crc.crc5_word(0x12345678 ^ (1 << bit)) != base)
        assert changed == 32  # CRC is linear: single-bit flips never alias

    def test_order_sensitivity(self):
        assert crc.crc5_bytes(b"ab") != crc.crc5_bytes(b"ba")

    def test_bits_vs_bytes_consistency(self):
        assert crc.crc5_bits(0xAB, 8) == crc.crc5_bytes(b"\xab")

    def test_state_chaining(self):
        direct = crc.crc5_bytes(b"xyz")
        chained = crc.crc5_bytes(b"z", crc.crc5_bytes(b"xy"))
        assert direct == chained


class TestShsFile:
    def test_initial_values_unique_per_register(self):
        values = {initial_shs(i) for i in range(32)}
        assert len(values) == 32

    def test_nonregister_locations_have_initials(self):
        for loc in (LOC_PC, LOC_MEM, LOC_FLAG):
            assert 0 <= initial_shs(loc) < 32

    def test_reset(self):
        shs = ShsFile()
        shs.write(5, 0x1F)
        shs.write(LOC_MEM, 0x0A)
        shs.reset()
        assert shs.read(5) == initial_shs(5)
        assert shs.read(LOC_MEM) == initial_shs(LOC_MEM)

    def test_r0_write_ignored(self):
        shs = ShsFile()
        shs.write(0, 0x1F)
        assert shs.read(0) == initial_shs(0)

    def test_corrupt_flips_bit(self):
        shs = ShsFile()
        before = shs.read(7)
        shs.corrupt(7, 2)
        assert shs.read(7) == before ^ 4

    def test_snapshot_is_immutable_copy(self):
        shs = ShsFile()
        snap = shs.snapshot()
        shs.write(3, 0)
        assert snap[3] == initial_shs(3)
        assert len(snap) == NUM_LOCATIONS


class TestOpIdentifier:
    def test_payload_bits_do_not_change_identifier(self):
        """The embedder computes op ids before payload embedding and the
        hardware after; spare bits must be canonicalized away."""
        word = encode(Op.ADD, rd=1, ra=2, rb=3)
        tagged = set_spare_bits(word, Op.ADD, [1, 0, 1, 1, 0, 1])
        assert op_identifier(decode(word)) == op_identifier(decode(tagged))
        assert canonical_word(decode(tagged)) == word

    def test_immediates_change_identifier(self):
        """Appendix A: immediates are part of the instruction spec."""
        a = op_identifier(decode(encode(Op.ADDI, rd=1, ra=2, imm=5)))
        b = op_identifier(decode(encode(Op.ADDI, rd=1, ra=2, imm=6)))
        assert a != b

    def test_destination_register_changes_identifier(self):
        a = op_identifier(decode(encode(Op.ADD, rd=1, ra=2, rb=3)))
        b = op_identifier(decode(encode(Op.ADD, rd=4, ra=2, rb=3)))
        assert a != b


class TestShsCombine:
    def test_deterministic_and_five_bit(self):
        value = shs_combine(7, 3, 9)
        assert value == shs_combine(7, 3, 9)
        assert 0 <= value < 32

    def test_input_order_matters(self):
        assert shs_combine(7, 3, 9) != shs_combine(7, 9, 3)

    def test_operation_id_matters(self):
        assert shs_combine(1, 5) != shs_combine(2, 5)


def _instr(op, **fields):
    return decode(encode(op, **fields))


class TestApplyInstruction:
    def test_alu_writes_destination(self):
        shs = ShsFile()
        out = apply_instruction(shs, _instr(Op.ADD, rd=5, ra=1, rb=2))
        assert shs.read(5) == out
        assert out == shs_combine(
            op_identifier(_instr(Op.ADD, rd=5, ra=1, rb=2)),
            initial_shs(1), initial_shs(2))

    def test_unary_alu_reads_only_ra(self):
        shs = ShsFile()
        instr = _instr(Op.EXTBS, rd=5, ra=1)
        out = apply_instruction(shs, instr)
        assert out == shs_combine(op_identifier(instr), initial_shs(1))

    def test_load_starts_fresh_history(self):
        shs = ShsFile()
        instr = _instr(Op.LWZ, rd=4, ra=2, imm=8)
        out = apply_instruction(shs, instr)
        assert out == shs_combine(op_identifier(instr), initial_shs(2))

    def test_store_accumulates_into_mem(self):
        shs = ShsFile()
        before = shs.read(LOC_MEM)
        apply_instruction(shs, _instr(Op.SW, ra=1, rb=2, imm=0))
        first = shs.read(LOC_MEM)
        assert first != before
        apply_instruction(shs, _instr(Op.SW, ra=1, rb=2, imm=4))
        assert shs.read(LOC_MEM) != first  # history, not overwrite

    def test_store_order_matters(self):
        a = ShsFile()
        apply_instruction(a, _instr(Op.SW, ra=1, rb=2, imm=0))
        apply_instruction(a, _instr(Op.SW, ra=3, rb=4, imm=0))
        b = ShsFile()
        apply_instruction(b, _instr(Op.SW, ra=3, rb=4, imm=0))
        apply_instruction(b, _instr(Op.SW, ra=1, rb=2, imm=0))
        assert a.read(LOC_MEM) != b.read(LOC_MEM)

    def test_compare_writes_flag(self):
        shs = ShsFile()
        apply_instruction(shs, _instr(Op.SF, ra=1, rb=2, cond=Cond.EQ))
        assert shs.read(LOC_FLAG) != initial_shs(LOC_FLAG)

    def test_branch_consumes_flag_writes_pc(self):
        shs = ShsFile()
        apply_instruction(shs, _instr(Op.SF, ra=1, rb=2, cond=Cond.EQ))
        flag_shs = shs.read(LOC_FLAG)
        instr = _instr(Op.BF, offset=4)
        apply_instruction(shs, instr)
        assert shs.read(LOC_PC) == shs_combine(op_identifier(instr), flag_shs)

    def test_call_writes_link_register_history(self):
        shs = ShsFile()
        apply_instruction(shs, _instr(Op.JAL, offset=16))
        assert shs.read(LINK_REG) != initial_shs(LINK_REG)
        assert shs.read(LOC_PC) != initial_shs(LOC_PC)

    def test_indirect_jump_consumes_target_register(self):
        a = ShsFile()
        a.write(5, 0x11)
        apply_instruction(a, _instr(Op.JR, rb=5))
        b = ShsFile()
        b.write(5, 0x12)
        apply_instruction(b, _instr(Op.JR, rb=5))
        assert a.read(LOC_PC) != b.read(LOC_PC)

    def test_nop_sig_halt_are_inert(self):
        shs = ShsFile()
        snap = shs.snapshot()
        for op in (Op.NOP, Op.SIG, Op.HALT):
            assert apply_instruction(shs, _instr(op)) is None
        assert shs.snapshot() == snap

    def test_shs_override_models_operand_travel(self):
        clean = ShsFile()
        instr = _instr(Op.ADD, rd=5, ra=1, rb=2)
        expected = apply_instruction(clean, instr)
        faulty = ShsFile()
        corrupted = apply_instruction(faulty, instr,
                                      shs_overrides={1: initial_shs(1) ^ 1})
        assert corrupted != expected

    def test_dest_override_moves_the_write(self):
        shs = ShsFile()
        instr = _instr(Op.ADD, rd=5, ra=1, rb=2)
        out = apply_instruction(shs, instr, dest_override=9)
        assert shs.read(9) == out
        assert shs.read(5) == initial_shs(5)

    def test_r0_destination_dropped(self):
        shs = ShsFile()
        apply_instruction(shs, _instr(Op.ADD, rd=0, ra=1, rb=2))
        assert shs.read(0) == initial_shs(0)


@given(op_id=st.integers(0, 31),
       inputs=st.lists(st.integers(0, 31), max_size=3))
def test_shs_combine_range(op_id, inputs):
    assert 0 <= shs_combine(op_id, *inputs) < 32
