"""Tests for the masking-timeline analyzer (:mod:`repro.analysis.masking`).

The soundness suite is the static arm of the hybrid-campaign safety
argument: every axis a :class:`TimelineVerdict` *proves* is differenced
against a forced-injection simulation run of the same (point, time,
duration).  A single disagreement here means synthesized campaign
results cannot be trusted.
"""

import pytest

from repro.analysis import AnalysisReport, analyze_program, recover_cfg
from repro.analysis.coverage import build_static_coverage_map
from repro.analysis.masking import (
    MaskingTimeline,
    TimelineVerdict,
    audit_timeline,
    check_dead_writes,
    compute_liveness,
    timeline_summary,
)
from repro.asm import assemble, parse
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT
from repro.toolchain import embed_program
from repro.workloads import WORKLOADS

SMALL = """
start:  li   r1, 6
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

DEAD = """
start:  li   r3, 1
        li   r3, 2
        la   r6, buf
        sw   r3, 0(r6)
        halt
        .data
buf:    .word 0
"""

BACK_TO_BACK_COMPARES = """
start:  li   r1, 1
        sfgtsi r1, 0
        sfgtsi r1, 5
        bf   out
        nop
out:    halt
"""


def analyze_source(source, **kwargs):
    kwargs.setdefault("check_signatures", False)
    return analyze_program(assemble(parse(source)), **kwargs)


@pytest.fixture(scope="module")
def campaign():
    return Campaign(embedded=embed_program(SMALL), seed=1)


@pytest.fixture(scope="module")
def timeline(campaign):
    return campaign.timeline()


class TestLiveness:
    def test_overwritten_register_not_live_in(self):
        cfg = recover_cfg(assemble(parse(DEAD)))
        liveness = compute_liveness(cfg)
        entry = liveness[min(cfg.blocks)]
        live_in, live_out = entry
        # r3 and r6 are written before any read on the only path.
        assert 3 not in live_in
        assert 6 not in live_in

    def test_loop_carried_register_live(self):
        cfg = recover_cfg(assemble(parse(SMALL)))
        liveness = compute_liveness(cfg)
        # The loop body reads r1/r2/r6 before (re)writing them, so some
        # block carries them in its live-in set.
        assert any(1 in live_in and 2 in live_in and 6 in live_in
                   for live_in, _ in liveness.values())

    def test_open_ended_blocks_keep_everything_observable(self):
        cfg = recover_cfg(assemble(parse(SMALL)))
        liveness = compute_liveness(cfg)
        # The halt block's live-out is the full location set: the final
        # architectural-state comparison reads every register.
        assert any(len(live_out) >= 32 for _, live_out in liveness.values())


class TestDeadWrites:
    def test_arg018_fires_on_synthetic_dead_write(self):
        report = AnalysisReport()
        check_dead_writes(recover_cfg(assemble(parse(DEAD))), report)
        assert report.codes() == {"ARG018"}
        [diag] = report.diagnostics
        assert "r3" in diag.message
        assert diag.address is not None and diag.block is not None

    def test_arg018_is_a_warning_in_the_pipeline(self):
        report = analyze_source(DEAD)
        assert "ARG018" in report.codes()
        assert report.ok  # a dead write degrades nothing, it just wastes

    def test_flag_rewrites_exempt(self):
        # Back-to-back compares clobber the flag; that is idiomatic, not
        # a dead write.
        report = analyze_source(BACK_TO_BACK_COMPARES)
        assert "ARG018" not in report.codes()

    def test_clean_program_has_no_dead_writes(self):
        report = analyze_source(SMALL)
        assert "ARG018" not in report.codes()

    @pytest.mark.parametrize("name", ["mesa", "g721_dec"])
    def test_bundled_workloads_clean(self, name):
        report = AnalysisReport()
        program = WORKLOADS[name].build_embedded().program
        check_dead_writes(recover_cfg(program), report)
        assert report.by_code("ARG018") == []


class TestTimelineVerdicts:
    def test_inert_points_masked_undetected(self, timeline, campaign):
        specs = [p.spec for p in campaign.points
                 if p.spec.target.startswith("inert.")]
        assert specs
        for spec in specs[:4]:
            v = timeline.verdict(spec, duration=TRANSIENT, inject_at=0)
            assert (v.masked, v.detected) == (True, False)
            assert v.rule == "inert"

    def test_checker_internal_faults_self_detect(self, timeline, campaign):
        spec = next(p.spec for p in campaign.points
                    if p.spec.target == "chk.adder.sum")
        v = timeline.verdict(spec, duration=TRANSIENT, inject_at=0)
        assert v.complete and v.masked and v.detected
        assert v.checker == "computation"

    def test_out_of_range_time_is_unknown(self, timeline, campaign):
        # Inert points are proven masked at any time; pick a live one.
        spec = next(p.spec for p in campaign.points
                    if not p.spec.target.startswith(("inert.", "chk.")))
        v = timeline.verdict(spec, duration=TRANSIENT,
                             inject_at=timeline.length + 10)
        assert v.masked is None and v.detected is None
        assert v.rule == "unknown"

    def test_verdict_axes_shape(self, timeline, campaign):
        for point in campaign.points[::7]:
            for duration in (TRANSIENT, PERMANENT):
                v = timeline.verdict(point.spec, duration=duration,
                                     inject_at=3,
                                     double_bit=point.double_bit)
                assert isinstance(v, TimelineVerdict)
                assert v.masked in (True, False, None)
                assert v.detected in (True, False, None)
                if v.checker is not None:
                    assert v.detected is True

    def test_timeline_built_from_program_and_records(self, campaign):
        rebuilt = MaskingTimeline(campaign.embedded.program,
                                  campaign.golden_trace())
        assert rebuilt.length == campaign.golden_length


class TestTimelineAudit:
    def test_no_arg019_on_small_program(self, timeline, campaign):
        coverage_map = build_static_coverage_map(campaign.embedded,
                                                 points=campaign.points)
        report = AnalysisReport()
        audit_timeline(timeline, coverage_map, report, samples=3)
        assert report.by_code("ARG019") == []

    def test_summary_shape(self, timeline, campaign):
        coverage_map = build_static_coverage_map(campaign.embedded,
                                                 points=campaign.points)
        stats = timeline_summary(timeline, coverage_map, samples=3)
        assert set(stats) == {TRANSIENT, PERMANENT, "times"}
        for duration in (TRANSIENT, PERMANENT):
            row = stats[duration]
            assert row["complete"] + row["partial"] + row["unknown"] \
                == row["probes"] > 0
            assert 0.0 <= row["complete_fraction"] <= 1.0
            assert sum(row["rules"].values()) == row["probes"]
        # The analyzer must prove something, or hybrid mode is pointless.
        assert stats[TRANSIENT]["complete_fraction"] > 0.3


# -- differential soundness: every proof vs a real simulation run ----------

#: Cheapest four workloads by golden-trace length; diversity of the
#: instruction mix matters more than raw probe count here.
SOUNDNESS_WORKLOADS = ("mesa", "g721_dec", "rasta", "g721_enc")

#: Per-workload budget of (verdict, simulation) comparisons.
SOUNDNESS_BUDGET = 6
#: At most this many probes share one proof rule, to spread coverage.
PER_RULE_CAP = 2


def _proven_probes(campaign, timeline):
    """Deterministically pick proven (spec, duration, time) probes with
    rule diversity: walk the point population in order, stratified
    injection times, capping repeats of the same proof rule."""
    times = [int(timeline.length * f) for f in (0.15, 0.5, 0.8)]
    per_rule = {}
    picked = []
    for duration in (TRANSIENT, PERMANENT):
        for point in campaign.points:
            for t in times:
                v = timeline.verdict(point.spec, duration=duration,
                                     inject_at=t,
                                     double_bit=point.double_bit)
                if v.masked is None and v.detected is None:
                    continue
                key = (duration, v.rule)
                if per_rule.get(key, 0) >= PER_RULE_CAP:
                    continue
                per_rule[key] = per_rule.get(key, 0) + 1
                picked.append((point.spec, duration, t, v))
                if len(picked) >= SOUNDNESS_BUDGET:
                    return picked
    return picked


@pytest.mark.parametrize("name", SOUNDNESS_WORKLOADS)
def test_soundness_vs_simulation(name):
    """No axis the timeline proves may ever disagree with simulation."""
    campaign = Campaign(embedded=WORKLOADS[name].build_embedded(), seed=7)
    timeline = campaign.timeline()
    probes = _proven_probes(campaign, timeline)
    assert probes, "the analyzer proved nothing on %s" % name
    for spec, duration, t, verdict in probes:
        result = campaign.run_experiment(spec, duration, inject_at=t)
        context = "%s %s@%d rule=%s" % (spec, duration, t, verdict.rule)
        if verdict.masked is not None:
            assert result.masked == verdict.masked, context
        if verdict.detected is not None:
            assert result.detected == verdict.detected, context
        if verdict.detected and verdict.checker is not None:
            assert result.checker == verdict.checker, context
