"""Unit tests for the computation sub-checkers and the watchdog."""

import pytest
from hypothesis import given, strategies as st

from repro.argus.checkers import AdderChecker, ModuloChecker, RsseChecker
from repro.argus.watchdog import Watchdog
from repro.isa.opcodes import Cond, Op
from repro.isa.semantics import divide, mul64

WORDS = st.integers(0, 0xFFFFFFFF)


class TestAdderChecker:
    def setup_method(self):
        self.checker = AdderChecker()

    def test_correct_add_passes(self):
        assert self.checker.check_add(5, 7, 12)
        assert self.checker.check_add(0xFFFFFFFF, 1, 0)  # wraparound

    def test_wrong_add_fails(self):
        assert not self.checker.check_add(5, 7, 13)

    def test_sub(self):
        assert self.checker.check_sub(5, 7, (5 - 7) & 0xFFFFFFFF)
        assert not self.checker.check_sub(5, 7, 2)

    def test_logic_emulation(self):
        assert self.checker.check_logic(Op.AND, 0xF0, 0x3C, 0x30)
        assert self.checker.check_logic(Op.OR, 0xF0, 0x0F, 0xFF)
        assert self.checker.check_logic(Op.XOR, 0xF0, 0xFF, 0x0F)
        assert not self.checker.check_logic(Op.AND, 0xF0, 0x3C, 0x31)

    def test_logic_rejects_non_logic(self):
        with pytest.raises(ValueError):
            self.checker.check_logic(Op.ADD, 1, 2, 3)

    def test_compare_replay(self):
        assert self.checker.check_compare(Cond.LTS, 0xFFFFFFFF, 0, 1)
        assert not self.checker.check_compare(Cond.LTS, 0xFFFFFFFF, 0, 0)

    def test_address_check(self):
        assert self.checker.check_address(0x1000, 0xFFFFFFFC, 0xFFC)  # -4
        assert not self.checker.check_address(0x1000, 4, 0x1000)

    def test_checker_internal_fault_causes_false_alarm(self):
        """A fault in the redundant adder can only cause a (masked)
        detection, never hide a real error of the same polarity."""
        faulty = AdderChecker(tap=lambda name, value: value ^ 1)
        assert not faulty.check_add(2, 2, 4)


class TestRsseChecker:
    def setup_method(self):
        self.checker = RsseChecker()

    def test_right_shifts(self):
        assert self.checker.check_right_shift(Op.SRL, 0x80000000, 4, 0x08000000)
        assert self.checker.check_right_shift(Op.SRA, 0x80000000, 4, 0xF8000000)
        assert not self.checker.check_right_shift(Op.SRL, 0x80000000, 4, 0xF8000000)

    def test_left_shift_inversion(self):
        assert self.checker.check_left_shift(0x0000FFFF, 8, 0x00FFFF00)
        assert not self.checker.check_left_shift(0x0000FFFF, 8, 0x00FFFF04)

    def test_left_shift_checks_shifted_in_zeros(self):
        """A low-bit corruption of a left-shift result must not escape."""
        assert not self.checker.check_left_shift(0x0000FFFF, 8, 0x00FFFF01)

    def test_left_shift_discarded_bits_masked(self):
        # Bits shifted off the top cannot be checked; only kept bits count.
        assert self.checker.check_left_shift(0xFF00FFFF, 8, 0x00FFFF00)

    def test_extensions(self):
        assert self.checker.check_extension(Op.EXTBS, 0x80, 0xFFFFFF80)
        assert self.checker.check_extension(Op.EXTHZ, 0x18000, 0x8000)
        assert not self.checker.check_extension(Op.EXTBS, 0x80, 0x80)

    def test_load_extension_replay(self):
        word = 0x8040C080
        assert self.checker.check_load_extension(Op.LBZ, word, 0, 0x80)
        assert self.checker.check_load_extension(Op.LBS, word, 3, 0xFFFFFF80)
        assert self.checker.check_load_extension(Op.LHS, word, 2, 0xFFFF8040)
        assert self.checker.check_load_extension(Op.LWZ, word, 0, word)
        assert not self.checker.check_load_extension(Op.LBZ, word, 1, 0x80)

    def test_store_merge_replay(self):
        old = 0x11223344
        assert self.checker.check_store_merge(Op.SB, old, 0xAB, 1, 0x1122AB44)
        assert self.checker.check_store_merge(Op.SH, old, 0xBEEF, 2, 0xBEEF3344)
        assert self.checker.check_store_merge(Op.SW, old, 7, 0, 7)
        assert not self.checker.check_store_merge(Op.SB, old, 0xAB, 0, 0x1122AB44)


class TestModuloChecker:
    def setup_method(self):
        self.checker = ModuloChecker(modulus=31)

    def test_correct_products_pass(self):
        for a, b in ((3, 7), (0xFFFFFFFF, 0xFFFFFFFF), (0x80000000, 2), (0, 5)):
            assert self.checker.check_mul(Op.MUL, a, b, mul64(Op.MUL, a, b))
            assert self.checker.check_mul(Op.MULU, a, b, mul64(Op.MULU, a, b))

    def test_wrong_product_detected(self):
        product = mul64(Op.MUL, 29, 1021)
        assert not self.checker.check_mul(Op.MUL, 29, 1021, product ^ 1)

    def test_high_bit_faults_detected(self):
        """The check covers the full 64-bit product - faults confined to
        the architecturally dead upper half still trip the checker, which
        is exactly the paper's detected-masked-error class."""
        product = mul64(Op.MULU, 0xFFFF, 0xFFFF)
        assert not self.checker.check_mul(Op.MULU, 0xFFFF, 0xFFFF,
                                          product ^ (1 << 60))

    def test_multiple_of_modulus_aliases(self):
        """Corruption by a multiple of M escapes (Sec. 3.3.2)."""
        product = mul64(Op.MULU, 100, 100)
        assert self.checker.check_mul(Op.MULU, 100, 100, product + 31)

    def test_divider_identity(self):
        for a, b in ((100, 7), ((-100) & 0xFFFFFFFF, 7), (5, 0)):
            quotient, remainder = divide(Op.DIV, a, b)
            assert self.checker.check_div(Op.DIV, a, b, quotient, remainder)

    def test_wrong_quotient_detected(self):
        quotient, remainder = divide(Op.DIVU, 1000, 7)
        assert not self.checker.check_div(Op.DIVU, 1000, 7, quotient + 1, remainder)

    def test_wrong_remainder_detected(self):
        quotient, remainder = divide(Op.DIVU, 1000, 7)
        assert not self.checker.check_div(Op.DIVU, 1000, 7, quotient, remainder ^ 2)

    def test_larger_modulus_still_sound(self):
        checker = ModuloChecker(modulus=127)
        assert checker.check_mul(Op.MULU, 123456, 789, mul64(Op.MULU, 123456, 789))
        assert not checker.check_mul(Op.MULU, 123456, 789,
                                     mul64(Op.MULU, 123456, 789) ^ 4)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            ModuloChecker(modulus=2)


class TestWatchdog:
    def test_fires_at_threshold(self):
        dog = Watchdog(threshold=5)
        for _ in range(4):
            assert not dog.tick(True)
        assert dog.tick(True)
        assert dog.fired

    def test_progress_resets_counter(self):
        dog = Watchdog(threshold=5)
        for _ in range(4):
            dog.tick(True)
        dog.tick(False)
        assert not dog.tick(True)
        assert dog.counter == 1

    def test_run_stalled(self):
        dog = Watchdog(threshold=63)
        assert not dog.run_stalled(62)
        assert dog.run_stalled(1)

    def test_default_is_six_bit_saturation(self):
        assert Watchdog().threshold == 63

    def test_reset(self):
        dog = Watchdog(threshold=2)
        dog.run_stalled(2)
        dog.reset()
        assert not dog.fired and dog.counter == 0

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            Watchdog(threshold=0)


# ---- hypothesis properties -------------------------------------------------

@given(a=WORDS, b=WORDS)
def test_adder_checker_complete_for_any_result_error(a, b):
    checker = AdderChecker()
    correct = (a + b) & 0xFFFFFFFF
    assert checker.check_add(a, b, correct)
    assert not checker.check_add(a, b, correct ^ 0x10)


@given(a=WORDS, b=WORDS)
def test_modulo_checker_never_false_alarms(a, b):
    checker = ModuloChecker()
    assert checker.check_mul(Op.MUL, a, b, mul64(Op.MUL, a, b))
    assert checker.check_mul(Op.MULU, a, b, mul64(Op.MULU, a, b))


@given(a=WORDS, b=st.integers(1, 0xFFFFFFFF), error=st.integers(1, 30))
def test_modulo_checker_catches_non_multiple_errors(a, b, error):
    """Product errors that are not multiples of 31 are always caught."""
    checker = ModuloChecker()
    product = mul64(Op.MULU, a, b)
    assert not checker.check_mul(Op.MULU, a, b, product + error)


@given(a=WORDS, amount=st.integers(0, 31))
def test_rsse_right_shift_never_false_alarms(a, amount):
    checker = RsseChecker()
    assert checker.check_right_shift(Op.SRL, a, amount, a >> amount)
