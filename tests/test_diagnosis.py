"""Tests for the fault-diagnosis subsystem: attribution plumbing,
localization ranking, and signature-driven binary repair."""

import json
import random

import pytest

from repro.analysis.coverage import build_static_coverage_map
from repro.diagnosis import (build_family_profiles, diagnose_records,
                             repair_program, strict_verify)
from repro.diagnosis.evaluate import evaluate_family
from repro.diagnosis.repair import (_single_bit_crc_deltas, _with_words,
                                    text_digest)
from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT, FaultSpec
from repro.io import load_raw, save_embedded
from repro.io.objfile import ObjFileError, load_embedded
from repro.runner.journal import record_to_result, result_to_record
from repro.toolchain import embed_program
from repro.workloads import WORKLOADS

SMALL = """
start:  li   r1, 6
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""


@pytest.fixture(scope="module")
def campaign():
    return Campaign(embedded=embed_program(SMALL), seed=3)


@pytest.fixture(scope="module")
def small_embedded():
    return embed_program(SMALL)


# ---------------------------------------------------------------------------
# Attribution: threaded through results, journals, and old records.
# ---------------------------------------------------------------------------

class TestAttribution:
    def test_detected_result_carries_attribution(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.alu.result", 1), TRANSIENT, inject_at=1)
        assert result.detected
        attribution = result.attribution
        assert attribution is not None
        assert attribution["checker"] == result.checker
        assert attribution["latency"]["instructions"] == \
            result.latency_instructions
        residues = attribution.get("residues")
        assert residues is not None and residues["unit"] in (
            "adder", "rsse", "copy", "compare", "modulo")

    def test_undetected_result_has_no_attribution(self, campaign):
        # A masked fault produces no detection and thus no attribution.
        result = campaign.run_experiment(
            FaultSpec("state.rf.value", 1 << 30, index=29, is_state=True),
            TRANSIENT, inject_at=1)
        assert not result.detected
        assert result.attribution is None

    def test_journal_round_trip_preserves_attribution(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.alu.result", 1), TRANSIENT, inject_at=1)
        record = result_to_record(result)
        assert record["attribution"] == result.attribution
        back = record_to_result(json.loads(json.dumps(record)))
        assert back.attribution == result.attribution
        assert back == result

    def test_attribution_elided_when_absent(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("state.rf.value", 1 << 30, index=29, is_state=True),
            TRANSIENT, inject_at=1)
        record = result_to_record(result)
        # Default-elided: pre-diagnosis journals stay byte-identical and
        # old records read back with attribution=None.
        assert "attribution" not in record
        assert record_to_result(record).attribution is None

    def test_dcs_attribution_carries_delta(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("cfc.expected", 1), TRANSIENT, inject_at=1)
        assert result.detected and result.checker == "dcs"
        residues = result.attribution["residues"]
        assert residues["delta"] == residues["computed"] ^ residues["expected"]

    def test_parity_attribution_names_register(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.op_a", 1 << 3), TRANSIENT, inject_at=3)
        if result.detected and result.checker == "parity":
            residues = result.attribution["residues"]
            assert residues["port"] in ("a", "b")
            assert 0 <= residues["reg"] < 32


# ---------------------------------------------------------------------------
# Localization ranking.
# ---------------------------------------------------------------------------

class TestLocalization:
    @pytest.fixture(scope="class")
    def profiles(self):
        return build_family_profiles(build_static_coverage_map())

    def test_profiles_cover_population(self, profiles):
        targets = {profile.target for profile in profiles}
        assert "ex.alu.result" in targets
        assert "state.rf.value" in targets
        assert not any(t.startswith("inert.") for t in targets)
        indexed = [p for p in profiles if p.target == "state.rf.value"]
        assert len(indexed) == 31  # r1..r31

    def test_known_family_ranks_top3(self, campaign, profiles):
        row = evaluate_family(campaign, profiles, "ex.alu.result", None,
                              seed=11, detections_target=8, max_attempts=60)
        assert row["detections"] >= 3
        assert row["rank"] is not None and row["rank"] <= 3

    def test_register_family_pinned_by_parity(self, campaign, profiles):
        row = evaluate_family(campaign, profiles, "state.rf.value", 2,
                              seed=12, detections_target=8, max_attempts=60)
        if row["detections"] >= 3:
            assert row["rank"] is not None and row["rank"] <= 5

    def test_diagnose_accepts_journal_dicts(self, campaign, profiles):
        results = [campaign.run_experiment(FaultSpec("ex.alu.result", 1),
                                           TRANSIENT, inject_at=i)
                   for i in (1, 2, 3)]
        records = [json.loads(json.dumps(result_to_record(r)))
                   for r in results]
        from_objects = diagnose_records(results, profiles=profiles)
        from_dicts = diagnose_records(records, profiles=profiles)
        assert [p.key for p, _ in from_objects.entries[:10]] == \
            [p.key for p, _ in from_dicts.entries[:10]]

    def test_ranking_is_deterministic(self, campaign, profiles):
        results = [campaign.run_experiment(FaultSpec("ex.alu.result", 1),
                                           TRANSIENT, inject_at=i)
                   for i in (1, 2)]
        first = diagnose_records(results, profiles=profiles)
        second = diagnose_records(results, profiles=profiles)
        assert [(p.key, s) for p, s in first.entries] == \
            [(p.key, s) for p, s in second.entries]

    def test_empty_stream_ranks_by_prior(self, profiles):
        ranking = diagnose_records([], profiles=profiles)
        assert ranking.detections == 0
        assert len(ranking.entries) == len(profiles)


# ---------------------------------------------------------------------------
# Strict verification and repair.
# ---------------------------------------------------------------------------

class TestStrictVerify:
    def test_intact_program_is_clean(self, small_embedded):
        program = small_embedded.program
        crc = text_digest(program.words)
        assert strict_verify(program, entry_dcs=small_embedded.entry_dcs,
                             text_crc=crc) == []

    def test_crc_mismatch_is_flagged(self, small_embedded):
        program = small_embedded.program
        findings = strict_verify(program,
                                 text_crc=text_digest(program.words) ^ 1)
        assert any(f.rule == "crc" for f in findings)

    def test_canonical_flip_implicates_block(self, small_embedded):
        program = small_embedded.program
        words = list(program.words)
        words[3] ^= 1 << 0  # register field bit: changes the block DCS
        findings = strict_verify(_with_words(program, words),
                                 entry_dcs=small_embedded.entry_dcs)
        assert findings
        implicated = set()
        for finding in findings:
            implicated.update(finding.addresses)
        assert program.text_base + 12 in implicated


class TestCrcDeltas:
    def test_single_bit_delta_table_is_exact(self, small_embedded):
        words = small_embedded.program.words
        deltas = _single_bit_crc_deltas(len(words))
        assert len(deltas) == 32 * len(words)
        crc = text_digest(words)
        rng = random.Random(5)
        for _ in range(64):
            i = rng.randrange(len(words))
            b = rng.randrange(32)
            corrupted = list(words)
            corrupted[i] ^= 1 << b
            delta = (text_digest(corrupted) ^ crc) & 0xFFFFFFFF
            assert deltas[delta] == (i, b)


class TestRepair:
    def test_exhaustive_single_bit_smallest_workload(self):
        # Property: any single text-bit flip repairs to the bit-identical
        # original - exhaustive on the smallest bundled workload.
        embedded = WORKLOADS["mpeg2"].build_embedded()
        program = embedded.program
        crc = text_digest(program.words)
        for index in range(len(program.words)):
            for bit in range(32):
                corrupted = list(program.words)
                corrupted[index] ^= 1 << bit
                outcome = repair_program(
                    _with_words(program, corrupted),
                    entry_dcs=embedded.entry_dcs, text_crc=crc,
                    oracle=False)
                assert outcome.status == "repaired", \
                    "word %d bit %d: %s" % (index, bit, outcome.status)
                assert outcome.program.words == program.words

    @pytest.mark.parametrize("name", ["rasta", "adpcm_enc", "jpeg_dec"])
    def test_sampled_single_bit_other_workloads(self, name):
        embedded = WORKLOADS[name].build_embedded()
        program = embedded.program
        crc = text_digest(program.words)
        rng = random.Random(hash_free_seed(name))
        for _ in range(6):
            index = rng.randrange(len(program.words))
            bit = rng.randrange(32)
            corrupted = list(program.words)
            corrupted[index] ^= 1 << bit
            outcome = repair_program(
                _with_words(program, corrupted),
                entry_dcs=embedded.entry_dcs, text_crc=crc, oracle=False)
            assert outcome.status == "repaired"
            assert outcome.program.words == program.words

    def test_adjacent_pair_repair(self, small_embedded):
        program = small_embedded.program
        crc = text_digest(program.words)
        rng = random.Random(9)
        for _ in range(8):
            index = rng.randrange(len(program.words))
            bit = rng.randrange(31)
            corrupted = list(program.words)
            corrupted[index] ^= 0b11 << bit
            outcome = repair_program(
                _with_words(program, corrupted),
                entry_dcs=small_embedded.entry_dcs, text_crc=crc,
                oracle=False)
            assert outcome.status == "repaired"
            assert outcome.program.words == program.words

    def test_repaired_binary_passes_analyzer_oracle(self, small_embedded):
        from repro.analysis import analyze_program

        program = small_embedded.program
        crc = text_digest(program.words)
        corrupted = list(program.words)
        corrupted[2] ^= 1 << 7
        outcome = repair_program(_with_words(program, corrupted),
                                 entry_dcs=small_embedded.entry_dcs,
                                 text_crc=crc, oracle=True)
        assert outcome.status == "repaired" and outcome.code == "ARG020"
        report = analyze_program(outcome.program,
                                 expected_entry_dcs=small_embedded.entry_dcs)
        assert report.ok

    def test_clean_input_reports_clean(self, small_embedded):
        program = small_embedded.program
        outcome = repair_program(program,
                                 entry_dcs=small_embedded.entry_dcs,
                                 text_crc=text_digest(program.words))
        assert outcome.status == "clean" and outcome.code is None

    def test_never_wrong_silent_repair_without_crc(self, small_embedded):
        # Signature-only mode: every single-bit corruption either repairs
        # to the bit-identical original, is reported ambiguous (ARG021),
        # is judged already-consistent (the invisible aliasing class), or
        # is given up on - never silently repaired to a different
        # program.
        program = small_embedded.program
        rng = random.Random(21)
        for _ in range(24):
            index = rng.randrange(len(program.words))
            bit = rng.randrange(32)
            corrupted = list(program.words)
            corrupted[index] ^= 1 << bit
            outcome = repair_program(_with_words(program, corrupted),
                                     entry_dcs=small_embedded.entry_dcs,
                                     oracle=False)
            if outcome.status == "repaired":
                assert outcome.program.words == program.words
            else:
                assert outcome.status in ("ambiguous", "unrepairable",
                                          "clean")
                if outcome.status == "ambiguous":
                    assert outcome.code == "ARG021"
                    assert len(outcome.candidates) > 1
                    assert outcome.program is None


class TestStorageScenarios:
    def test_scenario_multiplicities(self):
        from repro.faults.storage import StorageFaultError, parse_scenario

        assert parse_scenario("single_bit") == 1
        assert parse_scenario("adjacent_pair") == 2
        assert parse_scenario("random_3bit") == 3
        assert parse_scenario("random_7bit") == 7
        with pytest.raises(StorageFaultError):
            parse_scenario("random_0bit")
        with pytest.raises(StorageFaultError):
            parse_scenario("burst")

    def test_batches_are_distinct_and_in_range(self):
        from repro.faults.storage import generate_storage_faults

        rng = random.Random(5)
        for scenario, k in (("single_bit", 1), ("adjacent_pair", 2),
                            ("random_3bit", 3)):
            faults = generate_storage_faults(20, scenario, 30, rng)
            assert len(faults) == 30
            assert len(set(faults)) == 30
            for flips in faults:
                assert len(flips) == k
                for index, bit in flips:
                    assert 0 <= index < 20 and 0 <= bit < 32
                if scenario == "adjacent_pair":
                    (w1, b1), (w2, b2) = flips
                    assert w1 == w2 and b2 == b1 + 1

    def test_apply_is_involutive(self):
        from repro.faults.storage import apply_storage_fault

        words = [0xDEADBEEF, 0x12345678, 0]
        flips = ((0, 3), (2, 31))
        once = apply_storage_fault(words, flips)
        assert once != words
        assert apply_storage_fault(once, flips) == words

    def test_corrupt_program_feeds_repair(self, small_embedded):
        from repro.faults.storage import (corrupt_program,
                                          generate_storage_faults)

        program = small_embedded.program
        crc = text_digest(program.words)
        rng = random.Random(11)
        for flips in generate_storage_faults(len(program.words),
                                             "random_3bit", 4, rng):
            outcome = repair_program(corrupt_program(program, flips),
                                     entry_dcs=small_embedded.entry_dcs,
                                     text_crc=crc, oracle=False)
            assert outcome.status == "repaired"
            assert outcome.program.words == program.words


def hash_free_seed(name):
    """Deterministic per-name seed (hash() is salted per process)."""
    import zlib

    return zlib.crc32(name.encode())


# ---------------------------------------------------------------------------
# Object-file header CRC.
# ---------------------------------------------------------------------------

class TestObjfileTextCrc:
    def test_saved_header_carries_text_crc(self, small_embedded, tmp_path):
        path = tmp_path / "prog.aro"
        save_embedded(small_embedded, path)
        header = json.loads(path.read_text())
        assert header["text_crc"] == text_digest(
            small_embedded.program.words)
        load_embedded(path)  # verifies CRC on load

    def test_header_without_crc_still_loads(self, small_embedded, tmp_path):
        path = tmp_path / "old.aro"
        save_embedded(small_embedded, path)
        header = json.loads(path.read_text())
        del header["text_crc"]  # object written before the field existed
        path.write_text(json.dumps(header))
        load_embedded(path)

    def test_crc_mismatch_rejected_on_load(self, small_embedded, tmp_path):
        path = tmp_path / "bad.aro"
        save_embedded(small_embedded, path)
        header = json.loads(path.read_text())
        header["text_crc"] ^= 1
        path.write_text(json.dumps(header))
        with pytest.raises(ObjFileError):
            load_embedded(path)

    def test_repair_cli_round_trip(self, small_embedded, tmp_path):
        from repro.cli import main

        path = tmp_path / "prog.aro"
        fixed = tmp_path / "fixed.aro"
        save_embedded(small_embedded, path)
        header = json.loads(path.read_text())
        word = int(header["words"][4], 16) ^ (1 << 13)
        header["words"][4] = "0x%08x" % word
        bad = tmp_path / "bad.aro"
        bad.write_text(json.dumps(header))
        assert main(["repair", str(bad), "-o", str(fixed)]) == 0
        repaired, _ = load_raw(str(fixed))
        assert repaired.words == small_embedded.program.words
        assert main(["repair", str(fixed)]) == 0  # now intact
