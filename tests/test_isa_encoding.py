"""Unit tests for instruction encoding and spare-bit handling."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import encoding
from repro.isa.decode import decode
from repro.isa.encoding import (
    EncodingError,
    encode,
    get_spare_bits,
    set_spare_bits,
    spare_bit_positions,
)
from repro.isa.opcodes import ALU_FUNC, Cond, Op


class TestEncodeFields:
    def test_alu_register_fields(self):
        word = encode(Op.ADD, rd=3, ra=4, rb=5)
        assert (word >> 26) == 0x38
        assert (word >> 21) & 0x1F == 3
        assert (word >> 16) & 0x1F == 4
        assert (word >> 11) & 0x1F == 5
        assert word & 0x1F == ALU_FUNC[Op.ADD]

    def test_each_alu_func_is_distinct(self):
        words = {encode(op, rd=1, ra=2, rb=3) for op in ALU_FUNC}
        assert len(words) == len(ALU_FUNC)

    def test_addi_sign_extended_immediate(self):
        word = encode(Op.ADDI, rd=1, ra=2, imm=-1)
        assert word & 0xFFFF == 0xFFFF

    def test_logical_immediate_is_unsigned(self):
        word = encode(Op.ORI, rd=1, ra=2, imm=0xFFFF)
        assert word & 0xFFFF == 0xFFFF
        with pytest.raises(EncodingError):
            encode(Op.ORI, rd=1, ra=2, imm=-1)

    def test_store_offset_split_encoding(self):
        word = encode(Op.SW, ra=2, rb=3, imm=-4)
        instr = decode(word)
        assert instr.imm == -4
        assert instr.ra == 2
        assert instr.rb == 3

    def test_jump_offset_range(self):
        encode(Op.J, offset=(1 << 25) - 1)
        encode(Op.J, offset=-(1 << 25))
        with pytest.raises(EncodingError):
            encode(Op.J, offset=1 << 25)

    def test_movhi_range(self):
        assert encode(Op.MOVHI, rd=1, imm=0xFFFF) & 0xFFFF == 0xFFFF
        with pytest.raises(EncodingError):
            encode(Op.MOVHI, rd=1, imm=0x10000)

    def test_shift_immediate_fields(self):
        word = encode(Op.SRAI, rd=1, ra=2, shamt=31)
        instr = decode(word)
        assert instr.op is Op.SRAI
        assert instr.shamt == 31

    def test_shamt_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Op.SLLI, rd=1, ra=2, shamt=32)

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Op.ADD, rd=32, ra=0, rb=0)

    def test_compare_condition_encoded(self):
        word = encode(Op.SF, ra=1, rb=2, cond=Cond.GTS)
        instr = decode(word)
        assert instr.cond == Cond.GTS

    def test_unknown_op_rejected(self):
        with pytest.raises(EncodingError):
            encode("not-an-op")


class TestSpareBits:
    def test_alu_has_six_spare_bits(self):
        assert len(spare_bit_positions(Op.ADD)) == 6

    def test_loads_and_stores_have_no_spare_bits(self):
        for op in (Op.LWZ, Op.LBS, Op.SW, Op.SB, Op.ADDI, Op.SFI):
            assert spare_bit_positions(op) == ()

    def test_sig_has_26_spare_bits(self):
        assert len(spare_bit_positions(Op.SIG)) == 26

    def test_jr_has_21_spare_bits(self):
        assert len(spare_bit_positions(Op.JR)) == 21

    def test_spare_positions_are_msb_first(self):
        for op in (Op.ADD, Op.SIG, Op.JR, Op.SLLI, Op.NOP, Op.SF):
            positions = spare_bit_positions(op)
            assert list(positions) == sorted(positions, reverse=True)

    def test_set_get_roundtrip(self):
        word = encode(Op.ADD, rd=1, ra=2, rb=3)
        payload = [1, 0, 1, 1, 0, 1]
        out = set_spare_bits(word, Op.ADD, payload)
        assert get_spare_bits(out, Op.ADD) == payload

    def test_setting_spare_bits_preserves_decode(self):
        word = encode(Op.ADD, rd=1, ra=2, rb=3)
        out = set_spare_bits(word, Op.ADD, [1] * 6)
        instr = decode(out)
        assert (instr.op, instr.rd, instr.ra, instr.rb) == (Op.ADD, 1, 2, 3)

    def test_payload_overflow_rejected(self):
        word = encode(Op.ADD, rd=1, ra=2, rb=3)
        with pytest.raises(EncodingError):
            set_spare_bits(word, Op.ADD, [0] * 7)

    def test_clearing_spare_bits(self):
        word = set_spare_bits(encode(Op.ADD), Op.ADD, [1] * 6)
        cleared = set_spare_bits(word, Op.ADD, [0] * 6)
        assert get_spare_bits(cleared, Op.ADD) == [0] * 6


_ENCODABLE = sorted(encoding._PRIMARY, key=lambda op: op.value)


@given(
    op=st.sampled_from(_ENCODABLE),
    rd=st.integers(0, 31),
    ra=st.integers(0, 31),
    rb=st.integers(0, 31),
    imm=st.integers(-0x8000, 0x7FFF),
    shamt=st.integers(0, 31),
    cond=st.sampled_from(list(Cond)),
    offset=st.integers(-(1 << 25), (1 << 25) - 1),
)
def test_encode_decode_roundtrip(op, rd, ra, rb, imm, shamt, cond, offset):
    """Property: decode(encode(x)) reproduces every architectural field."""
    if op in (Op.ANDI, Op.ORI, Op.XORI):
        imm = abs(imm)
    word = encode(op, rd=rd, ra=ra, rb=rb, imm=imm, shamt=shamt,
                  cond=int(cond), offset=offset)
    instr = decode(word)
    assert instr.op is op
    fmt = encoding.op_format(op)
    if fmt == "jump":
        assert instr.offset == offset
    elif fmt in ("load", "alui"):
        assert (instr.rd, instr.ra) == (rd, ra)
        assert instr.imm == (imm if op is not Op.ADDI else imm) or True
        assert instr.imm == imm
    elif fmt == "store":
        assert (instr.ra, instr.rb, instr.imm) == (ra, rb, imm)
    elif fmt == "alu":
        assert (instr.rd, instr.ra) == (rd, ra)
        if instr.reads_rb:
            assert instr.rb == rb
    elif fmt == "shifti":
        assert (instr.rd, instr.ra, instr.shamt) == (rd, ra, shamt)
    elif fmt == "sfi":
        assert (instr.ra, instr.imm, instr.cond) == (ra, imm, int(cond))
    elif fmt == "sf":
        assert (instr.ra, instr.rb, instr.cond) == (ra, rb, int(cond))
    elif fmt == "jr":
        assert instr.rb == rb
    elif fmt == "movhi":
        assert (instr.rd, instr.imm) == (rd, imm & 0xFFFF)
