"""Unit tests for the static binary verifier (:mod:`repro.analysis`)."""

import json

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    WARNING,
    AnalysisReport,
    Diagnostic,
    analyze_embedded,
    analyze_program,
    recover_cfg,
)
from repro.analysis.cfg import reachable_blocks
from repro.analysis.signatures import derive_block_dcs
from repro.asm import assemble, parse
from repro.cli import main as cli_main
from repro.isa.decode import decode
from repro.toolchain import EmbedError, embed_program

SIMPLE = """
start:  li   r1, 3
loop:   addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        halt
"""

CALLS = """
start:  li   r2, 1
        jal  fn
        nop
        lwz  r3, 0(r2)
        halt
fn:     add  r2, r2, r2
        ret
        nop
        .data
        .word 0
"""


def analyze_source(source, **kwargs):
    kwargs.setdefault("check_signatures", False)
    return analyze_program(assemble(parse(source)), **kwargs)


class TestDiagnosticFramework:
    def test_codes_registry_shape(self):
        assert len(CODES) >= 13
        for code, (severity, summary) in CODES.items():
            assert code.startswith("ARG") and len(code) == 6
            assert severity in (ERROR, WARNING)
            assert summary

    def test_add_validates_code(self):
        report = AnalysisReport()
        with pytest.raises(ValueError):
            report.add("ARG999", "nope")

    def test_severity_defaults_from_registry(self):
        report = AnalysisReport()
        report.add("ARG001", "bad word", address=0x1000)
        report.add("ARG005", "island", block=0x2000)
        assert [d.severity for d in report.diagnostics] == [ERROR, WARNING]
        assert not report.ok
        assert len(report.errors) == 1 and len(report.warnings) == 1

    def test_format_includes_code_address_and_block(self):
        diagnostic = Diagnostic(ERROR, "ARG010", "mismatch",
                                address=0x1004, block=0x1000)
        text = diagnostic.format()
        assert "ARG010" in text
        assert "0x1004" in text and "0x1000" in text

    def test_render_text_and_json_agree(self):
        report = AnalysisReport()
        report.add("ARG003", "too big", address=0x1000, block=0x1000)
        assert "1 error(s), 0 warning(s)" in report.render_text()
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "ARG003"

    def test_ok_with_warnings_only(self):
        report = AnalysisReport()
        report.add("ARG013", "maybe-undefined read")
        assert report.ok


class TestCfgRecovery:
    def test_matches_embedder_partition(self):
        embedded = embed_program(CALLS)
        cfg = recover_cfg(embedded.program)
        assert list(cfg.blocks) == list(embedded.blocks)
        for start, block in cfg.blocks.items():
            hardware = embedded.blocks[start]
            assert (block.end, block.kind) == (hardware.end, hardware.kind)

    def test_never_raises_on_garbage(self):
        program = assemble(parse(SIMPLE))
        program.words[1] = 0xFFFFFFFF
        cfg = recover_cfg(program)
        assert any(not b.fully_decoded for b in cfg.blocks.values())

    def test_reachability_covers_call_and_return(self):
        embedded = embed_program(CALLS)
        cfg = recover_cfg(embedded.program)
        assert reachable_blocks(cfg) == set(cfg.blocks)

    def test_block_containing(self):
        cfg = recover_cfg(assemble(parse(SIMPLE)))
        first = next(iter(cfg.blocks.values()))
        assert cfg.block_containing(first.start) is first
        assert cfg.block_containing(first.end - 4) is first
        assert cfg.block_containing(cfg.text_end) is None


class TestStructuralLints:
    def test_clean_program_is_clean(self):
        report = analyze_embedded(embed_program(SIMPLE))
        assert report.ok
        assert not report.diagnostics

    def test_arg001_undecodable_word(self):
        embedded = embed_program(SIMPLE)
        embedded.program.words[1] = 0xFFFFFFFF
        report = analyze_program(embedded.program,
                                 expected_entry_dcs=embedded.entry_dcs)
        bad = report.by_code("ARG001")
        assert bad and bad[0].address == embedded.program.text_base + 4

    def test_arg002_branch_into_delay_slot(self):
        report = analyze_source("start: j 3\nnop\nj 2\nnop\nhalt")
        assert report.by_code("ARG002")

    def test_arg003_oversize_block(self):
        body = "\n".join("add r1, r1, r2" for _ in range(30))
        report = analyze_source("start:\n%s\nhalt" % body, dataflow=False)
        oversize = report.by_code("ARG003")
        assert oversize and oversize[0].block == 0x1000

    def test_arg003_respects_max_block_override(self):
        body = "\n".join("add r1, r1, r2" for _ in range(10))
        source = "start:\n%s\nhalt" % body
        assert not analyze_source(source, dataflow=False).by_code("ARG003")
        small = analyze_source(source, dataflow=False, max_block=4)
        assert small.by_code("ARG003")

    def test_arg004_missing_terminal(self):
        report = analyze_source("start: addi r1, r0, 1\nadd r2, r1, r1")
        assert report.by_code("ARG004")

    def test_arg004_truncated_embedded_binary(self):
        embedded = embed_program(SIMPLE)
        embedded.program.words.pop()
        report = analyze_program(embedded.program,
                                 expected_entry_dcs=embedded.entry_dcs)
        assert report.by_code("ARG004")

    def test_arg005_unreachable_block_is_warning(self):
        report = analyze_source(
            "start: j fin\nnop\ndead: addi r1, r0, 1\nhalt\nfin: halt")
        island = report.by_code("ARG005")
        assert island and island[0].severity == WARNING
        assert report.ok  # warnings do not fail the lint

    def test_arg006_capacity_overflow(self):
        # A cond block of loads/stores exposes no spare bits at all.
        report = analyze_program(
            assemble(parse("start: lwz r1, 0(r2)\nbf 2\nlwz r3, 0(r2)\nhalt")),
            check_signatures=True, dataflow=False)
        assert report.by_code("ARG006")

    def test_arg007_branch_into_block_middle(self):
        report = analyze_source(
            "start: addi r1, r0, 1\naddi r1, r1, 1\nj -1\nnop\nhalt")
        assert report.by_code("ARG007")

    def test_arg008_branch_out_of_text(self):
        report = analyze_source("start: j 100\nnop\nhalt")
        assert report.by_code("ARG008")

    def test_arg009_requires_front_end_disagreement(self):
        # A clean binary: both front ends agree, no ARG009.
        report = analyze_embedded(embed_program(CALLS))
        assert not report.by_code("ARG009")


class TestSignatureVerification:
    def test_arg010_flipped_payload_bit(self):
        from repro.argus.payload import payload_positions

        embedded = embed_program(SIMPLE)
        program = embedded.program
        block = next(b for b in embedded.blocks.values() if b.fields)
        flipped = False
        for addr in range(block.start, block.end, 4):
            word = program.word_at(addr)
            positions = payload_positions(decode(word).op)
            if positions:
                program.set_word(addr, word ^ (1 << positions[0]))
                flipped = True
                break
        assert flipped
        report = analyze_program(program,
                                 expected_entry_dcs=embedded.entry_dcs)
        mismatch = report.by_code("ARG010")
        assert mismatch and mismatch[0].block == block.start

    def test_arg011_corrupted_codeptr_tag(self):
        source = CALLS + "table: .codeptr fn\n"
        embedded = embed_program(source)
        program = embedded.program
        site, _label = program.codeptr_sites[0]
        offset = site - program.data_base
        pointer = int.from_bytes(program.data[offset:offset + 4], "little")
        program.data[offset:offset + 4] = \
            (pointer ^ (1 << 29)).to_bytes(4, "little")
        report = analyze_program(program,
                                 expected_entry_dcs=embedded.entry_dcs)
        tag = report.by_code("ARG011")
        assert tag and tag[0].address == site

    def test_arg012_wrong_entry_dcs(self):
        embedded = embed_program(SIMPLE)
        report = analyze_program(embedded.program,
                                 expected_entry_dcs=embedded.entry_dcs ^ 1)
        entry = report.by_code("ARG012")
        assert entry and entry[0].block == embedded.program.entry

    def test_derive_matches_embedder_dcs(self):
        embedded = embed_program(CALLS)
        derived = derive_block_dcs(recover_cfg(embedded.program))
        for start, block in embedded.blocks.items():
            assert derived[start] == block.dcs


class TestDataflow:
    def test_arg013_use_before_def(self):
        report = analyze_source("start: add r2, r1, r1\nhalt")
        reads = report.by_code("ARG013")
        assert reads and reads[0].severity == WARNING
        assert "r1" in reads[0].message

    def test_flag_read_before_compare(self):
        report = analyze_source("start: bf 2\nnop\nhalt")
        assert any("compare flag" in d.message
                   for d in report.by_code("ARG013"))

    def test_defined_on_all_paths_is_clean(self):
        report = analyze_source(SIMPLE)
        assert not report.by_code("ARG013")

    def test_r0_always_defined(self):
        report = analyze_source("start: add r1, r0, r0\nhalt")
        assert not report.by_code("ARG013")

    def test_call_fallthrough_carries_call_site_state(self):
        # r2 is defined before the call; the return point must still
        # see it even though the callee defines nothing new.
        report = analyze_source(CALLS)
        assert not report.by_code("ARG013")


class TestEmbedVerifyGate:
    def test_verify_true_passes_clean_source(self):
        embedded = embed_program(SIMPLE, verify=True)
        assert embedded.entry_dcs == embed_program(SIMPLE).entry_dcs

    def test_verify_gate_catches_broken_embedder(self, monkeypatch):
        import repro.toolchain.embed as embed_mod

        real = embed_mod.payload_mod.embed_bits

        def sabotage(words, ops, bits):
            packed = real(words, ops, bits)
            from repro.argus.payload import payload_positions
            for index, op in enumerate(ops):
                positions = payload_positions(op)
                if positions:
                    packed[index] ^= 1 << positions[0]
                    break
            return packed

        monkeypatch.setattr(embed_mod.payload_mod, "embed_bits", sabotage)
        with pytest.raises(EmbedError, match="ARG01"):
            embed_program(SIMPLE, verify=True)
        # Without the gate the broken embedding sails through.
        embed_program(SIMPLE, verify=False)


class TestEmbedErrorMessages:
    def test_missing_delay_slot_names_block(self):
        from repro.toolchain.embed import scan_hardware_blocks

        with pytest.raises(EmbedError, match=r"block at 0x1000.*delay slot"):
            scan_hardware_blocks(
                assemble(parse("start: addi r1, r0, 1\nj start")))

    def test_missing_terminal_reports_insn_count(self):
        from repro.toolchain.embed import scan_hardware_blocks

        with pytest.raises(EmbedError, match=r"block at 0x1000 \(2 insns\)"):
            scan_hardware_blocks(
                assemble(parse("start: addi r1, r0, 1\nadd r2, r1, r1")))

    def test_phase3_errors_carry_block_context(self):
        source = "start: addi r1, r0, 1\naddi r2, r0, 2\nj -1\nnop\nhalt"
        with pytest.raises(EmbedError,
                           match=r"block 0x1000 \(jump terminal, 4 insns\)"):
            embed_program(source)


class TestLintCli:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(SIMPLE)
        return str(path)

    def test_lint_clean_source_exits_zero(self, capsys, source_file):
        assert cli_main(["lint", source_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_clean_object(self, capsys, source_file, tmp_path):
        obj = str(tmp_path / "prog.aro")
        assert cli_main(["asm", source_file, "-o", obj, "--embed"]) == 0
        capsys.readouterr()
        assert cli_main(["lint", obj]) == 0

    def test_lint_corrupted_object_exits_one(self, capsys, source_file,
                                             tmp_path):
        obj = str(tmp_path / "prog.aro")
        cli_main(["asm", source_file, "-o", obj, "--embed"])
        with open(obj) as handle:
            payload = json.load(handle)
        word = int(payload["words"][0], 16)
        payload["words"][0] = "0x%08x" % (word ^ 1)
        with open(obj, "w") as handle:
            json.dump(payload, handle)
        capsys.readouterr()
        assert cli_main(["lint", obj]) == 1
        out = capsys.readouterr().out
        assert "error[ARG" in out

    def test_lint_json_format(self, capsys, source_file):
        assert cli_main(["lint", "--format", "json", source_file]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["targets"][0]["diagnostics"] == []

    def test_lint_plain_mode(self, capsys, tmp_path):
        path = tmp_path / "plain.s"
        path.write_text("start: add r2, r1, r1\nhalt\n")
        assert cli_main(["lint", "--plain", str(path)]) == 0
        assert "ARG013" in capsys.readouterr().out

    def test_lint_missing_file_exits_two(self, capsys, tmp_path):
        assert cli_main(["lint", str(tmp_path / "missing.aro")]) == 2

    def test_lint_unembeddable_source_exits_two(self, capsys, tmp_path):
        path = tmp_path / "broken.s"
        path.write_text("start: addi r1, r0, 1\n")  # no terminal
        assert cli_main(["lint", str(path)]) == 2
        assert "FAILED" in capsys.readouterr().out

    def test_lint_no_inputs_exits_two(self, capsys):
        assert cli_main(["lint"]) == 2
