"""Property-based end-to-end tests over randomly generated programs.

These are the strongest invariants in the repository:

1. **Zero false positives** - any legal program, once embedded, runs on
   the fully-checked core without a single checker firing (Appendix B's
   soundness direction, and the paper's Sec. 4.1.2 experiment).
2. **Transparency** - embedding never changes architectural results.
3. **Single-error detection** - a random single-bit ALU-result or
   operand fault on a random instruction is either masked or detected
   (never silently corrupts the checked run's result) for the classes
   the checkers fully cover.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.argus.errors import ArgusError
from repro.asm import assemble, parse
from repro.cpu import CheckedCore, FastCore
from repro.faults.injector import SignalInjector
from repro.faults.model import FaultSpec
from repro.toolchain import embed_program


def _generate_program(rng):
    """Random but legal program: straight-line ALU/memory blocks, loops
    with bounded trip counts, compares and branches, one call."""
    lines = [
        "start:  li r1, %d" % rng.randint(1, 5),
        "        li r2, %d" % rng.randint(-100, 100),
        "        li r3, %d" % rng.randint(1, 1000),
        "        la r10, buf",
    ]
    ops = ("add", "sub", "and", "or", "xor", "mul")
    for i in range(rng.randint(2, 10)):
        rd = rng.randint(2, 8)
        ra = rng.randint(1, 8)
        rb = rng.randint(1, 8)
        lines.append("        %s r%d, r%d, r%d" % (rng.choice(ops), rd, ra, rb))
    lines += [
        "loop:   add r4, r4, r2",
        "        sw  r4, 0(r10)",
        "        lwz r5, 0(r10)",
        "        slli r6, r5, %d" % rng.randint(0, 7),
        "        srai r7, r6, %d" % rng.randint(0, 7),
        "        addi r1, r1, -1",
        "        sfgtsi r1, 0",
        "        bf loop",
        "        nop",
        "        jal mix",
        "        nop",
        "        sw  r8, 4(r10)",
        "        halt",
        "mix:    xor r8, r4, r7",
        "        divu r8, r3, r8" if rng.random() < 0.5 else "        add r8, r8, r3",
        "        ret",
        "        nop",
        "        .data",
        "buf:    .word 0, 0",
    ]
    return "\n".join(lines)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_random_programs_have_no_false_positives(seed):
    source = _generate_program(random.Random(seed))
    embedded = embed_program(source)
    core = CheckedCore(embedded, detect=True)
    result = core.run(max_instructions=100_000)  # raises ArgusError on bug
    assert result.halted


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_embedding_is_architecturally_transparent(seed):
    source = _generate_program(random.Random(seed))
    base_program = assemble(parse(source))
    base = FastCore(base_program)
    base.run(max_instructions=100_000)
    embedded = embed_program(source)
    instrumented = FastCore(embedded.program)
    instrumented.run(max_instructions=100_000)
    for offset in (0, 4):
        assert (instrumented.load_word(embedded.program.addr_of("buf") + offset)
                == base.load_word(base_program.addr_of("buf") + offset))


@given(seed=st.integers(0, 10_000), bit=st.integers(0, 31),
       inject_at=st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_alu_faults_never_corrupt_checked_results_silently(seed, bit, inject_at):
    """An ALU-result fault is fully covered by the adder/RSSE/modulo
    sub-checkers: the checked run either detects it or the fault was
    masked (the result matches the clean run)."""
    source = _generate_program(random.Random(seed))
    embedded = embed_program(source)

    clean = CheckedCore(embedded, detect=True)
    clean.run(max_instructions=100_000)
    buf = embedded.program.addr_of("buf")
    expected = (clean.load_word(buf), clean.load_word(buf + 4))

    injector = SignalInjector(FaultSpec("ex.alu.result", 1 << bit))
    core = CheckedCore(embedded, injector=injector, detect=True)
    step = 0
    try:
        while not core.halted and step < 100_000:
            if step == inject_at:
                injector.enable()
            core.step()
            step += 1
    except ArgusError:
        return  # detected: fine
    assert core.halted
    assert (core.load_word(buf), core.load_word(buf + 4)) == expected
