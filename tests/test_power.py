"""Tests for the activity-based power model (the paper's future work)."""

import pytest

from repro.area.components import core_overhead
from repro.area.power import activity_fractions, estimate_power, estimate_suite
from repro.workloads import WORKLOADS


class TestActivityFractions:
    def test_fractions_from_histogram(self):
        histogram = {"ADD": 50, "MUL": 10, "LWZ": 20, "SF": 10, "BF": 10}
        fractions = activity_fractions(histogram, 100)
        assert fractions["alu"] == pytest.approx(0.5)
        assert fractions["muldiv"] == pytest.approx(0.1)
        assert fractions["mem"] == pytest.approx(0.2)
        assert fractions["compare"] == pytest.approx(0.1)
        assert fractions["block_end"] == pytest.approx(0.1)
        assert fractions["always"] == 1.0

    def test_combined_classes(self):
        histogram = {"SLL": 30, "SW": 20, "ADD": 10}
        fractions = activity_fractions(histogram, 60)
        assert fractions["shift_or_mem"] == pytest.approx(50 / 60)
        # Register shifts count as ALU work too (they share the unit).
        assert fractions["alu_or_mem"] == pytest.approx(60 / 60)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            activity_fractions({}, 0)


class TestPowerEstimate:
    def test_overhead_in_plausible_band(self):
        """The paper conjectures a 'fairly low' overhead in line with the
        ~17% area overhead; the activity model must land in that band."""
        estimate = estimate_power(WORKLOADS["adpcm_enc"])
        assert 0.08 < estimate.overhead < 0.25

    def test_muldiv_heavy_workload_pays_more_checker_power(self):
        """gsm's multiply-accumulate loop keeps the modulo checker hot."""
        gsm = estimate_power(WORKLOADS["gsm"])
        epic = estimate_power(WORKLOADS["epic"])  # add/shift only
        assert gsm.class_fractions["muldiv"] > epic.class_fractions["muldiv"]

    def test_suite_average(self):
        subset = [WORKLOADS[name] for name in ("adpcm_enc", "rasta")]
        estimates, average = estimate_suite(subset)
        assert len(estimates) == 2
        assert average == pytest.approx(
            sum(e.overhead for e in estimates) / 2)

    def test_power_overhead_tracks_area_overhead(self):
        """Checker hardware is never *more* active than its host units,
        so power overhead cannot exceed the area overhead by much."""
        estimate = estimate_power(WORKLOADS["pegwit"])
        assert estimate.overhead < core_overhead() * 1.3
