"""Static checker-coverage audit (repro.analysis.coverage).

Four layers of the same guarantee:

1. the *checker algebra hooks* match exhaustive enumeration (all 32 CRC5
   residue classes, every modulo-31 power-of-two residue, every DCS fold
   sensitivity bit);
2. the *classification* covers 100% of the injection-point population
   with no ``unknown`` and the expected per-signal outcomes;
3. the *audit lints* ARG014-ARG017 stay silent on the healthy map and
   fire on fabricated defects;
4. the *differential gate* agrees with real campaign results and flags
   fabricated static/empirical contradictions.

Plus the satellite consistency check: the fault population's gate
inventory and the area model must describe the same machine.
"""

import json

import pytest

from repro.analysis.coverage import (
    ALGEBRAIC,
    ALIASED,
    ALIASING_BOUNDS,
    BLIND,
    DETECTED,
    MASKED,
    REFINEMENT_MAP,
    UNKNOWN,
    Disagreement,
    ExerciseProfile,
    PointCoverage,
    StaticCoverageMap,
    audit_coverage_map,
    build_static_coverage_map,
    classify_point,
    differential_audit,
)
from repro.argus import crc, dcs
from repro.argus.checkers import ModuloChecker
from repro.argus.errors import (
    CHECKER_COMPUTATION,
    CHECKER_CONTROL_FLOW,
    CHECKER_PARITY,
    CHECKER_WATCHDOG,
)
from repro.cli import main as cli_main
from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT, FaultSpec
from repro.faults.points import (
    ARGUS_COMPONENTS,
    BASELINE_COMPONENTS,
    GATE_INVENTORY,
    InjectionPoint,
    build_point_population,
    signal_rows,
)
from repro.formal.machine import IDEAL_CONDITIONS
from repro.isa.opcodes import Op
from repro.toolchain import embed_program


# ---------------------------------------------------------------------------
# 1. CRC5 aliasing algebra, exhaustively (satellite: all 32 classes).
# ---------------------------------------------------------------------------

class TestCrc5Algebra:
    def test_all_single_bit_syndromes_nonzero(self):
        syndromes = crc.single_bit_syndromes(32)
        assert len(syndromes) == 32
        assert all(s != 0 for s in syndromes.values())

    def test_single_bit_syndromes_distinct_within_period(self):
        # x^5 + x^2 + 1 is primitive: period 31, so the first 31 bit
        # positions map to 31 *distinct* non-zero syndromes and bit 31
        # wraps around onto bit 0's syndrome.
        syndromes = crc.single_bit_syndromes(32)
        first31 = [syndromes[b] for b in range(31)]
        assert len(set(first31)) == 31
        assert syndromes[31] == syndromes[0]

    def test_residue_classes_exhaustive_10bit(self):
        # All 2**10 patterns fall into 32 equal cosets of the kernel.
        classes = crc.residue_classes(10)
        assert len(classes) == 32
        assert set(classes.values()) == {2 ** (10 - 5)}
        assert sum(classes.values()) == 2 ** 10

    def test_aliasing_fraction_matches_enumeration(self):
        classes = crc.residue_classes(10)
        aliasing = (classes[0] - 1) / (2 ** 10 - 1)  # minus the zero pattern
        assert crc.aliasing_fraction(10) == pytest.approx(aliasing)
        assert crc.aliasing_fraction(10) == pytest.approx(31 / 1023)

    def test_aliasing_fraction_under_1_32(self):
        for nbits in (5, 8, 10, 16, 32):
            assert 0.0 <= crc.aliasing_fraction(nbits) < 1 / 32
        assert crc.aliasing_fraction(4) == 0.0

    def test_linearity(self):
        # crc(x ^ y) == crc(x) ^ crc(y) with zero initial state - the
        # property the whole symbolic-propagation argument rests on.
        for x, y in [(0x123, 0x3FF), (0x2AA, 0x155), (1, 1 << 9)]:
            assert (crc.crc5_bits(x ^ y, 10)
                    == crc.crc5_bits(x, 10) ^ crc.crc5_bits(y, 10))

    def test_residue_classes_refuses_large_widths(self):
        with pytest.raises(ValueError):
            crc.residue_classes(32)


# ---------------------------------------------------------------------------
# 1b. Modulo-31 residue algebra vs behavioural checks.
# ---------------------------------------------------------------------------

class TestModuloAlgebra:
    def test_all_single_bit_residues_nonzero(self):
        residues = ModuloChecker().single_bit_residues(64)
        assert len(residues) == 64
        assert all(r != 0 for r in residues.values())

    def test_residues_cycle_with_period_five(self):
        # 2**5 = 32 = 1 mod 31: the residues cycle through {1,2,4,8,16}.
        residues = ModuloChecker().single_bit_residues(64)
        assert set(residues.values()) == {1, 2, 4, 8, 16}
        for bit in range(59):
            assert residues[bit + 5] == residues[bit]

    def test_check_mul_catches_every_single_bit_flip(self):
        # Behavioural confirmation of the algebra on all 64 positions.
        checker = ModuloChecker()
        a, b = 123457, 998877
        product = a * b
        assert checker.check_mul(Op.MULU, a, b, product)
        for bit in range(64):
            assert not checker.check_mul(Op.MULU, a, b, product ^ (1 << bit))

    def test_check_div_quotient_escape_iff_divisor_multiple_of_31(self):
        checker = ModuloChecker()
        for b in (31, 62, 93):  # divisor = 0 mod 31: quotient unchecked
            a = 7_000_001
            q, r = divmod(a, b)
            assert checker.check_div(Op.DIVU, a, b, q ^ 1, r)
        for b in (30, 32, 7):  # divisor != 0 mod 31: flip detected
            a = 7_000_001
            q, r = divmod(a, b)
            assert not checker.check_div(Op.DIVU, a, b, q ^ 1, r)

    def test_aliasing_probability(self):
        assert ModuloChecker().aliasing_probability() == pytest.approx(1 / 31)
        assert ModuloChecker(modulus=127).aliasing_probability() == \
            pytest.approx(1 / 127)


# ---------------------------------------------------------------------------
# 1c. DCS permute + fold sensitivity.
# ---------------------------------------------------------------------------

class TestDcsAlgebra:
    def test_every_flat_bit_visible(self):
        sensitivity = dcs.single_bit_sensitivity()
        assert len(sensitivity) == 175  # 35 locations x 5 bits
        for delta in sensitivity.values():
            assert delta != 0
            assert delta & (delta - 1) == 0  # exactly one DCS bit

    def test_fold_linearity_against_compute_dcs(self):
        values = [((3 * i + 1) * 7) % 32 for i in range(35)]
        flat = 0
        for value in values:
            flat = (flat << 5) | value
        assert dcs.fold_delta(flat) == dcs.compute_dcs(values)
        # XORing a delta into the snapshot shifts the DCS by fold_delta.
        delta = (1 << 7) | (1 << 100)
        perturbed = flat ^ delta
        assert dcs.fold_delta(perturbed) == \
            dcs.compute_dcs(values) ^ dcs.fold_delta(delta)

    def test_aliasing_bound(self):
        assert dcs.DCS_ALIASING_BOUND == pytest.approx(1 / 32)


# ---------------------------------------------------------------------------
# 2. Classification of the point population.
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def full_map():
    return build_static_coverage_map()


class TestClassification:
    def test_every_point_classified(self, full_map):
        points = build_point_population()
        assert len(full_map) == len(points)
        assert full_map.unknown() == []
        for entry in full_map.entries:
            assert entry.outcome in (DETECTED, ALIASED, BLIND, MASKED)

    def test_lookup_round_trip(self, full_map):
        for point in build_point_population()[:50]:
            entry = full_map.lookup(point.spec)
            assert entry is not None
            assert entry.key == (point.spec.target, point.spec.mask,
                                 point.spec.index)

    def _outcomes_of(self, full_map, target, double_bit=False):
        return {e.outcome for e in full_map.entries
                if e.target == target and e.double_bit == double_bit}

    def test_spot_checks(self, full_map):
        om = self._outcomes_of
        assert om(full_map, "ex.alu.result") == {DETECTED}
        assert om(full_map, "ex.alu.result", double_bit=True) == {DETECTED}
        assert om(full_map, "ex.op_a") == {DETECTED}
        assert om(full_map, "ex.op_a", double_bit=True) == {BLIND}
        assert om(full_map, "state.rf.value") == {ALIASED}
        assert om(full_map, "state.rf.value", double_bit=True) == {BLIND}
        assert om(full_map, "ctl.hang") == {DETECTED}
        assert om(full_map, "if.pc") == {ALIASED}
        assert om(full_map, "state.shs") == {MASKED}
        assert om(full_map, "chk.adder.sum") == {MASKED}
        assert om(full_map, "inert.alu") == {MASKED}
        assert om(full_map, "lsu.load_data", double_bit=True) == {DETECTED}

    def test_mul_product_upper_half_masked(self, full_map):
        entries = [e for e in full_map.entries
                   if e.target == "ex.mul.product"]
        assert len(entries) == 64
        for entry in entries:
            bit = entry.mask.bit_length() - 1
            expected = MASKED if bit >= 32 else DETECTED
            assert entry.outcome == expected, "bit %d" % bit
            assert entry.detected_by == (CHECKER_COMPUTATION,)

    def test_blind_points_are_all_double_bit(self, full_map):
        for entry in full_map.entries:
            if entry.outcome == BLIND:
                assert entry.double_bit
                assert entry.detected_by == ()

    def test_blind_weight_is_tiny(self, full_map):
        weights = full_map.outcome_weights()
        assert weights[BLIND] < 0.01  # the paper's conceded sliver
        # Masked-by-construction carries the logic-derated inert points
        # plus checker hardware: the dominant share, as in Table 1.
        assert 0.30 < weights[MASKED] < 0.70

    def test_algebraic_alias_probabilities_within_bounds(self, full_map):
        saw_algebraic = False
        for entry in full_map.entries:
            if entry.outcome != ALIASED or entry.alias_kind != ALGEBRAIC:
                continue
            saw_algebraic = True
            assert entry.alias_probability is not None
            bound = max(ALIASING_BOUNDS[c] for c in entry.detected_by)
            assert 0.0 < entry.alias_probability <= bound + 1e-12
        assert saw_algebraic

    def test_possible_checkers_includes_incidental(self, full_map):
        entry = next(e for e in full_map.entries
                     if e.target == "state.rf.value" and not e.double_bit)
        assert CHECKER_PARITY in entry.possible_checkers
        assert CHECKER_CONTROL_FLOW in entry.possible_checkers
        assert CHECKER_WATCHDOG in entry.possible_checkers

    def test_to_dict_shapes(self, full_map):
        data = full_map.to_dict()
        assert data["points"] == len(full_map)
        assert sum(data["outcomes"].values()) == len(full_map)
        assert sum(data["weighted"].values()) == pytest.approx(1.0)
        aliased_rows = [row for row in data["classes"]
                        if row["outcome"] == ALIASED]
        assert aliased_rows and all("condition" in row
                                    for row in aliased_rows)


class TestExerciseProfile:
    SOURCE_NO_MULDIV = """
    start:
        addi r3, r0, 5
        addi r4, r0, 7
        add r5, r3, r4
        halt
    """

    def test_program_without_muldiv_masks_muldiv_signals(self):
        embedded = embed_program(self.SOURCE_NO_MULDIV)
        coverage_map = build_static_coverage_map(embedded)
        for target in ("ex.mul.product", "ex.div.quotient", "lsu.addr",
                       "ex.flag", "ctl.flag"):
            outcomes = {e.outcome for e in coverage_map.entries
                        if e.target == target}
            assert outcomes == {MASKED}, target
        # ...but the ALU and the register file stay live,
        assert {e.outcome for e in coverage_map.entries
                if e.target == "ex.alu.result"} == {DETECTED}
        # and state targets are never exercise-gated.
        assert {e.outcome for e in coverage_map.entries
                if e.target == "state.rf.value" and not e.double_bit} == \
            {ALIASED}

    def test_full_profile_exercises_everything(self):
        profile = ExerciseProfile.full()
        for target in ("ex.mul.product", "lsu.addr", "ctl.btarget"):
            assert profile.exercises(target)

    def test_profile_of_program_overapproximates(self):
        embedded = embed_program(self.SOURCE_NO_MULDIV)
        profile = ExerciseProfile.of_program(embedded.program)
        assert Op.ADD in profile.ops
        assert not (profile.ops & {Op.MUL, Op.MULU, Op.DIV, Op.DIVU})

    def test_audit_stays_clean_under_any_workload_profile(self):
        from repro.workloads import ALL_WORKLOADS
        for workload in ALL_WORKLOADS[:4]:
            coverage_map = build_static_coverage_map(
                workload.build_embedded())
            report = audit_coverage_map(coverage_map)
            assert report.ok, (workload.name, report.render_text())


# ---------------------------------------------------------------------------
# 3. Audit lints ARG014-ARG017.
# ---------------------------------------------------------------------------

def _entry(target="x.y", mask=1, outcome=DETECTED, **kw):
    base = dict(target=target, mask=mask, index=None, is_state=False,
                double_bit=False, component="alu", weight=1.0,
                outcome=outcome)
    base.update(kw)
    return PointCoverage(**base)


def _healthy_owner_entries():
    """Minimal entry set that satisfies every REFINEMENT_MAP condition."""
    entries = []
    owners = set()
    for condition in IDEAL_CONDITIONS:
        owners.update(REFINEMENT_MAP[condition])
    for i, owner in enumerate(sorted(owners)):
        entries.append(_entry(target="own.%s" % owner, mask=1 << i,
                              detected_by=(owner,)))
    return entries


class TestAuditLints:
    def test_healthy_population_is_clean(self, full_map):
        report = audit_coverage_map(full_map)
        assert report.ok, report.render_text()
        assert report.codes() == set()

    def test_arg014_blind_single_bit(self):
        entries = _healthy_owner_entries() + [
            _entry(target="bad.bus", outcome=BLIND)]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG014" in report.codes()
        assert any("bad.bus" in d.message for d in report.by_code("ARG014"))

    def test_arg014_ignores_double_bit_blind(self):
        entries = _healthy_owner_entries() + [
            _entry(target="bus", outcome=BLIND, double_bit=True)]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG014" not in report.codes()

    def test_arg015_alias_probability_above_bound(self):
        entries = _healthy_owner_entries() + [
            _entry(target="bad.alias", outcome=ALIASED,
                   detected_by=(CHECKER_CONTROL_FLOW,),
                   alias_kind=ALGEBRAIC, alias_probability=0.2)]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG015" in report.codes()

    def test_arg015_allows_probability_at_bound(self):
        entries = _healthy_owner_entries() + [
            _entry(target="ok.alias", outcome=ALIASED,
                   detected_by=(CHECKER_CONTROL_FLOW,),
                   alias_kind=ALGEBRAIC,
                   alias_probability=dcs.DCS_ALIASING_BOUND)]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG015" not in report.codes()

    def test_arg016_unknown_point(self):
        entries = _healthy_owner_entries() + [
            _entry(target="mystery.signal", outcome=UNKNOWN)]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG016" in report.codes()

    def test_arg017_uncovered_ideal_condition(self):
        # A map whose only points are masked checker hardware leaves
        # every ideal condition without a detecting refinement.
        entries = [_entry(target="chk.x", outcome=MASKED,
                          detected_by=(CHECKER_COMPUTATION,))]
        report = audit_coverage_map(StaticCoverageMap(
            entries, ExerciseProfile.full()))
        assert "ARG017" in report.codes()
        assert len(report.by_code("ARG017")) == len(IDEAL_CONDITIONS)

    def test_unknown_rule_fallback_fires_on_novel_signal(self):
        point = InjectionPoint(FaultSpec(target="novel.bus", mask=1),
                               1.0, "alu")
        assert classify_point(point).outcome == UNKNOWN

    def test_refinement_map_covers_all_ideal_conditions(self):
        assert set(REFINEMENT_MAP) == set(IDEAL_CONDITIONS)


# ---------------------------------------------------------------------------
# 4. Differential gate: static map vs empirical campaign.
# ---------------------------------------------------------------------------

class TestDifferentialGate:
    @pytest.fixture(scope="class")
    def campaign_run(self):
        campaign = Campaign(seed=11)
        summary = campaign.run(experiments=40, duration=TRANSIENT,
                               keep_results=True)
        coverage_map = build_static_coverage_map(campaign.embedded,
                                                 points=campaign.points)
        return summary, coverage_map

    def test_real_campaign_has_zero_disagreements(self, campaign_run):
        summary, coverage_map = campaign_run
        defects = differential_audit(summary.results, coverage_map)
        assert defects == [], "\n".join(d.format() for d in defects)

    def test_detected_point_reported_silent_is_defect(self, campaign_run):
        summary, coverage_map = campaign_run
        entry = next(e for e in coverage_map.entries
                     if e.outcome == DETECTED)
        template = summary.results[0]
        fake = template.__class__(
            spec=FaultSpec(target=entry.target, mask=entry.mask,
                           index=entry.index, is_state=entry.is_state),
            duration=TRANSIENT, inject_at=0, masked=False, detected=False,
            checker=None, detail="")
        defects = differential_audit([fake], coverage_map)
        assert len(defects) == 1
        assert "silently corrupted" in defects[0].reason

    def test_impossible_checker_is_defect(self, campaign_run):
        summary, coverage_map = campaign_run
        # A blind double-bit operand flip "detected by parity" would
        # contradict parity's even-weight blind spot.
        entry = next(e for e in coverage_map.entries
                     if e.outcome == BLIND and e.target == "ex.op_a")
        template = summary.results[0]
        fake = template.__class__(
            spec=FaultSpec(target=entry.target, mask=entry.mask,
                           index=entry.index, is_state=entry.is_state),
            duration=TRANSIENT, inject_at=0, masked=False, detected=True,
            checker=CHECKER_PARITY, detail="")
        defects = differential_audit([fake], coverage_map)
        assert len(defects) == 1
        assert "cannot fire" in defects[0].reason

    def test_masked_point_unmasked_is_defect(self, campaign_run):
        summary, coverage_map = campaign_run
        entry = next(e for e in coverage_map.entries
                     if e.outcome == MASKED and e.target == "state.shs")
        template = summary.results[0]
        fake = template.__class__(
            spec=FaultSpec(target=entry.target, mask=entry.mask,
                           index=entry.index, is_state=entry.is_state),
            duration=TRANSIENT, inject_at=0, masked=False, detected=False,
            checker=None, detail="")
        defects = differential_audit([fake], coverage_map)
        assert len(defects) == 1
        assert "architectural divergence" in defects[0].reason

    def test_unclassified_spec_is_defect(self, campaign_run):
        summary, coverage_map = campaign_run
        template = summary.results[0]
        fake = template.__class__(
            spec=FaultSpec(target="ghost.signal", mask=1),
            duration=TRANSIENT, inject_at=0, masked=True, detected=False,
            checker=None, detail="")
        defects = differential_audit([fake], coverage_map)
        assert len(defects) == 1
        assert defects[0].static_outcome == UNKNOWN

    def test_disagreement_format(self):
        defect = Disagreement("ex.op_a", 0x8, None, DETECTED,
                              "unmasked_undetected", None, "why")
        text = defect.format()
        assert "ex.op_a" in text and "0x8" in text and "why" in text


class TestMatrixCrossCheck:
    def test_matrix_agrees_with_static_map(self):
        from repro.eval.coverage_matrix import (
            build_coverage_matrix, verify_against_static)
        matrix = build_coverage_matrix(probes_per_signal=1)
        assert verify_against_static(matrix) == []

    def test_synthetic_bad_matrix_is_flagged(self):
        from repro.eval.coverage_matrix import (
            SignalCoverage, verify_against_static)
        bad = SignalCoverage(signal="state.shs", component="shs_datapath")
        bad.outcomes = {"parity": 1}  # statically impossible on SHS state
        bad.injections = 1
        assert verify_against_static({"state.shs": bad}) != []

    def test_unknown_signal_is_flagged(self):
        from repro.eval.coverage_matrix import (
            SignalCoverage, verify_against_static)
        ghost = SignalCoverage(signal="ghost.bus", component="alu")
        ghost.outcomes = {"undetected": 1}
        ghost.injections = 1
        assert verify_against_static({"ghost.bus": ghost}) != []


# ---------------------------------------------------------------------------
# 5. Satellite: gate inventory vs area model consistency.
# ---------------------------------------------------------------------------

class TestInventoryConsistency:
    def test_area_model_and_fault_population_share_components(self):
        from repro.area.components import component_areas
        assert set(component_areas()) == set(GATE_INVENTORY)

    def test_baseline_argus_partition(self):
        assert set(BASELINE_COMPONENTS) | set(ARGUS_COMPONENTS) == \
            set(GATE_INVENTORY)
        assert not set(BASELINE_COMPONENTS) & set(ARGUS_COMPONENTS)

    def test_signal_rows_reference_inventory_components(self):
        for row in signal_rows():
            assert row.component in GATE_INVENTORY, row.target

    def test_component_signal_shares_do_not_exceed_unity(self):
        shares = {}
        for row in signal_rows():
            shares[row.component] = shares.get(row.component, 0.0) + row.share
        for component, total in shares.items():
            assert total <= 1.0 + 1e-9, (component, total)

    def test_signal_rows_match_population(self):
        # Every (target, index, bit) the rows describe appears as a
        # single-bit point, and nothing else does.
        expected = set()
        for row in signal_rows():
            indices = row.indices or (None,)
            for index in indices:
                for bit in range(row.bit_offset, row.bit_offset + row.width):
                    expected.add((row.target, 1 << bit, index))
        actual = {(p.spec.target, p.spec.mask, p.spec.index)
                  for p in build_point_population(include_double_bits=False,
                                                  include_inert=False)}
        assert actual == expected


# ---------------------------------------------------------------------------
# 6. CLI.
# ---------------------------------------------------------------------------

class TestAuditCli:
    def test_population_audit_clean(self, capsys):
        assert cli_main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "<population>" in out
        assert "masked-by-construction" in out

    def test_json_output_parses(self, capsys):
        assert cli_main(["audit", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        target = data["targets"][0]
        assert UNKNOWN not in target["outcomes"]
        assert target["points"] == sum(target["outcomes"].values())
        assert target["audit"]["errors"] == 0

    def test_workload_audit(self, capsys):
        assert cli_main(["audit", "--all-workloads", "--format",
                         "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["targets"]) == 13

    def test_source_file_audit(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text(TestExerciseProfile.SOURCE_NO_MULDIV)
        assert cli_main(["audit", str(source), "--classes"]) == 0
        out = capsys.readouterr().out
        assert "prog.s" in out

    def test_missing_file_exits_2(self, capsys):
        assert cli_main(["audit", "no-such-file.s"]) == 2
        assert "FAILED" in capsys.readouterr().out
