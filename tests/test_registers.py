"""Unit tests for register conventions and DCS-tagged pointers."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import registers


class TestConventions:
    def test_special_registers(self):
        assert registers.ZERO_REG == 0
        assert registers.LINK_REG == 9
        assert registers.STACK_POINTER == 1

    def test_aliases(self):
        assert registers.parse_reg("lr") == 9
        assert registers.parse_reg("SP") == 1
        assert registers.parse_reg("zero") == 0
        assert registers.parse_reg("r17") == 17

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            registers.parse_reg("r32")

    def test_reg_name(self):
        assert registers.reg_name(9) == "r9"


class TestTaggedPointers:
    def test_pack_and_split(self):
        pointer = registers.pack_pointer(0x123456, 0x1F)
        assert registers.pointer_address(pointer) == 0x123456
        assert registers.pointer_dcs(pointer) == 0x1F

    def test_zero_tag(self):
        assert registers.pack_pointer(0x4, 0) == 0x4

    def test_address_range_enforced(self):
        registers.pack_pointer(registers.ADDR_MASK, 0)
        with pytest.raises(ValueError):
            registers.pack_pointer(1 << registers.ADDR_BITS, 0)

    def test_dcs_range_enforced(self):
        with pytest.raises(ValueError):
            registers.pack_pointer(0, 32)


@given(address=st.integers(0, registers.ADDR_MASK),
       dcs=st.integers(0, 31))
def test_pack_roundtrip(address, dcs):
    pointer = registers.pack_pointer(address, dcs)
    assert registers.pointer_address(pointer) == address
    assert registers.pointer_dcs(pointer) == dcs
    assert pointer <= 0xFFFFFFFF
