"""Unit tests for the assembly parser and pseudo-instruction expansion."""

import pytest

from repro.asm.ir import Directive, Imm, Insn, Label, Mem, Reg, Sym
from repro.asm.parser import AsmSyntaxError, parse


def single(source):
    stmts = parse(source)
    assert len(stmts) == 1
    return stmts[0]


class TestBasicParsing:
    def test_three_register_instruction(self):
        stmt = single("add r1, r2, r3")
        assert stmt.mnemonic == "add"
        assert stmt.operands == (Reg(1), Reg(2), Reg(3))

    def test_label_then_instruction_same_line(self):
        stmts = parse("loop: addi r1, r1, -1")
        assert isinstance(stmts[0], Label) and stmts[0].name == "loop"
        assert isinstance(stmts[1], Insn)

    def test_label_alone(self):
        stmt = single("done:")
        assert isinstance(stmt, Label)

    def test_consecutive_labels(self):
        stmts = parse("a:\nb: nop")
        assert [s.name for s in stmts[:2]] == ["a", "b"]

    def test_comments_stripped(self):
        assert single("nop # trailing").mnemonic == "nop"
        assert parse("# whole line\n; also this") == []

    def test_hex_and_negative_immediates(self):
        stmt = single("addi r1, r0, -42")
        assert stmt.operands[2] == Imm(-42)
        stmt = single("ori r1, r0, 0xBEEF")
        assert stmt.operands[2] == Imm(0xBEEF)

    def test_memory_operand(self):
        stmt = single("lwz r1, 8(r2)")
        assert stmt.operands[1] == Mem(Imm(8), Reg(2))

    def test_memory_operand_negative_offset(self):
        stmt = single("sw r1, -4(sp)")
        assert stmt.operands[1] == Mem(Imm(-4), Reg(1))

    def test_memory_operand_symbolic_offset(self):
        stmt = single("lwz r1, buf(r0)")
        assert stmt.operands[1] == Mem(Sym("buf"), Reg(0))

    def test_register_aliases(self):
        assert single("jr lr").operands == (Reg(9),)
        assert single("add r1, sp, zero").operands == (Reg(1), Reg(1), Reg(0))

    def test_hi_lo_modifiers(self):
        stmt = single("movhi r1, %hi(label)")
        assert stmt.operands[1] == Sym("label", "hi")
        stmt = single("ori r1, r1, %lo(label)")
        assert stmt.operands[2] == Sym("label", "lo")

    def test_hi_lo_on_constants_folds(self):
        stmt = single("movhi r1, %hi(0x12345678)")
        assert stmt.operands[1] == Imm(0x1234)
        stmt = single("ori r1, r1, %lo(0x12345678)")
        assert stmt.operands[2] == Imm(0x5678)

    def test_bad_operand_raises_with_line(self):
        with pytest.raises(AsmSyntaxError) as err:
            parse("nop\nadd r1, 1+2, r3")
        assert "line 2" in str(err.value)


class TestDirectives:
    def test_word_directive(self):
        stmt = single(".word 1, 2, 3")
        assert isinstance(stmt, Directive)
        assert stmt.args == (Imm(1), Imm(2), Imm(3))

    def test_word_with_label_reference(self):
        stmt = single(".word target")
        assert stmt.args == (Sym("target"),)

    def test_codeptr(self):
        stmt = single(".codeptr handler")
        assert stmt.name == "codeptr"

    def test_ascii(self):
        stmt = single('.ascii "hi"')
        assert stmt.args == (b"hi",)

    def test_asciz_appends_nul(self):
        stmt = single('.asciz "hi"')
        assert stmt.args == (b"hi\0",)

    def test_sections(self):
        stmts = parse(".text\nnop\n.data\n.word 1")
        assert stmts[0].name == "text"
        assert stmts[2].name == "data"


class TestPseudoExpansion:
    def test_li_small_becomes_addi(self):
        stmt = single("li r5, 100")
        assert stmt.mnemonic == "addi"
        assert stmt.operands == (Reg(5), Reg(0), Imm(100))

    def test_li_negative_small(self):
        stmt = single("li r5, -1")
        assert stmt.mnemonic == "addi"

    def test_li_large_becomes_movhi_ori(self):
        stmts = parse("li r5, 0x12345678")
        assert [s.mnemonic for s in stmts] == ["movhi", "ori"]
        assert stmts[0].operands[1] == Imm(0x1234)
        assert stmts[1].operands[2] == Imm(0x5678)

    def test_li_large_round_skips_ori(self):
        stmts = parse("li r5, 0x40000")
        assert [s.mnemonic for s in stmts] == ["movhi"]

    def test_la(self):
        stmts = parse("la r5, buffer")
        assert [s.mnemonic for s in stmts] == ["movhi", "ori"]
        assert stmts[0].operands[1] == Sym("buffer", "hi")

    def test_mov(self):
        stmt = single("mov r1, r2")
        assert stmt.mnemonic == "add"
        assert stmt.operands == (Reg(1), Reg(2), Reg(0))

    def test_ret(self):
        stmt = single("ret")
        assert stmt.mnemonic == "jr"
        assert stmt.operands == (Reg(9),)

    def test_b_and_call(self):
        assert single("b loop").mnemonic == "j"
        assert single("call fn").mnemonic == "jal"

    def test_bad_pseudo_operands(self):
        with pytest.raises(AsmSyntaxError):
            parse("li r1, label")
        with pytest.raises(AsmSyntaxError):
            parse("mov r1, 5")
        with pytest.raises(AsmSyntaxError):
            parse("ret r1")
