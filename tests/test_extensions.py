"""Tests for the paper-mentioned extensions: memory scrubbing (Sec. 4.2)
and the lockstep-DMR reference baseline (Sec. 5)."""

import pytest

from repro.argus.errors import MemoryCheckError
from repro.argus.scrubber import Scrubber, scrub_latency_bound
from repro.cpu import LockstepCore
from repro.faults.injector import SignalInjector
from repro.faults.model import FaultSpec
from repro.mem.checked import CheckedMemory
from repro.toolchain import embed_program

PROGRAM = """
start:  li   r1, 5
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        halt
        .data
buf:    .word 0
"""


class TestScrubber:
    def _memory(self, words=16):
        memory = CheckedMemory()
        for i in range(words):
            memory.store_word(0x1000 + 4 * i, i * 0x01010101)
        return memory

    def test_clean_memory_scrubs_quietly(self):
        scrubber = Scrubber(self._memory(), words_per_activation=4)
        assert scrubber.full_sweep() == 16
        assert scrubber.sweeps_completed == 1

    def test_finds_planted_storage_error(self):
        memory = self._memory()
        memory.corrupt_stored_bit(0x1008, 7)
        scrubber = Scrubber(memory, words_per_activation=4)
        with pytest.raises(MemoryCheckError):
            scrubber.full_sweep()

    def test_incremental_cursor_wraps(self):
        scrubber = Scrubber(self._memory(words=6), words_per_activation=4)
        scrubber.activate()
        scrubber.activate()  # 8 checks over 6 words: wraps once
        assert scrubber.words_checked == 8
        assert scrubber.sweeps_completed == 1

    def test_incremental_detection_within_one_sweep(self):
        memory = self._memory(words=8)
        memory.corrupt_parity(0x101C)  # the last word
        scrubber = Scrubber(memory, words_per_activation=2)
        activations = 0
        with pytest.raises(MemoryCheckError):
            for _ in range(8):
                scrubber.activate()
                activations += 1
        assert activations <= 4  # 8 words / 2 per activation

    def test_empty_memory(self):
        assert Scrubber(CheckedMemory()).activate() == 0

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Scrubber(CheckedMemory(), words_per_activation=0)

    def test_latency_bound_formula(self):
        assert scrub_latency_bound(0, 4, 100) == 0
        assert scrub_latency_bound(16, 4, 100) == 400
        assert scrub_latency_bound(17, 4, 100) == 500  # partial batch

    def test_bound_holds_empirically(self):
        memory = self._memory(words=20)
        memory.corrupt_parity(0x1000 + 4 * 19)
        scrubber = Scrubber(memory, words_per_activation=3)
        bound = scrub_latency_bound(20, 3, 1)
        activations = 0
        with pytest.raises(MemoryCheckError):
            while True:
                scrubber.activate()
                activations += 1
        assert activations <= bound


class TestLockstep:
    def test_clean_lockstep_run(self):
        embedded = embed_program(PROGRAM)
        core = LockstepCore(embedded)
        result = core.run()
        assert result.halted
        assert not result.mismatch
        assert core.primary.reg(2) == core.shadow.reg(2) == 15

    def test_detects_alu_fault_in_one_replica(self):
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("ex.alu.result", 1 << 4))
        core = LockstepCore(embedded, injector=injector)
        injector.enable()
        result = core.run()
        assert result.mismatch
        assert result.mismatch_step >= 1

    def test_detects_pc_fault(self):
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("if.pc", 1 << 4))
        core = LockstepCore(embedded, injector=injector)
        injector.enable()
        assert core.run().mismatch

    def test_detects_hang(self):
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("ctl.hang", 1))
        core = LockstepCore(embedded, injector=injector)
        injector.enable()
        assert core.run().mismatch

    def test_misses_masked_faults(self):
        """Like Argus, DMR cannot see architecturally masked errors - a
        flip confined to the multiplier's dead upper half never retires."""
        embedded = embed_program(PROGRAM)
        injector = SignalInjector(FaultSpec("ex.mul.product", 1 << 60))
        core = LockstepCore(embedded, injector=injector)
        injector.enable()
        result = core.run()
        assert not result.mismatch  # no multiply in this program at all

    def test_replicas_share_nothing(self):
        embedded = embed_program(PROGRAM)
        core = LockstepCore(embedded)
        core.run()
        assert core.primary.dmem is not core.shadow.dmem
        assert core.primary.rf is not core.shadow.rf
