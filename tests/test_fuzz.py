"""Differential fuzzing over structured random programs.

The strongest repository-wide invariants, on richer programs than
test_properties.py's inline generator: jump tables, sub-word memory,
diamonds, loops, calls and divides, all composed randomly.
"""


from hypothesis import given, settings, strategies as st

from repro.asm import assemble, parse
from repro.cpu import CheckedCore, FastCore
from repro.toolchain import embed_program, verify_embedding
from repro.workloads.fuzz import generate_program


def _result_word(core, program):
    return core.load_word(program.addr_of("result"))


@given(seed=st.integers(0, 1 << 32))
@settings(max_examples=60, deadline=None)
def test_fuzz_differential_three_ways(seed):
    """base FastCore == embedded FastCore == embedded CheckedCore, and
    the checked run raises no false positive."""
    source = generate_program(seed)
    base_program = assemble(parse(source))
    base = FastCore(base_program)
    base.run(max_instructions=200_000)

    embedded = embed_program(source)
    instrumented = FastCore(embedded.program)
    instrumented.run(max_instructions=200_000)
    checked = CheckedCore(embedded, detect=True)
    checked.run(max_instructions=200_000)

    expected = _result_word(base, base_program)
    assert _result_word(instrumented, embedded.program) == expected
    assert checked.load_word(embedded.program.addr_of("result")) == expected


@given(seed=st.integers(0, 1 << 32))
@settings(max_examples=30, deadline=None)
def test_fuzz_embedding_verifies(seed):
    """Every generated embedding passes the loader-side verifier."""
    embedded = embed_program(generate_program(seed))
    rebuilt = verify_embedding(embedded.program)
    assert rebuilt.entry_dcs == embedded.entry_dcs
    assert list(rebuilt.blocks) == list(embedded.blocks)


def test_generator_determinism():
    assert generate_program(77) == generate_program(77)
    assert generate_program(77) != generate_program(78)


def test_generator_scales_with_segments():
    small = generate_program(5, segments=2)
    large = generate_program(5, segments=12)
    assert len(large.splitlines()) > len(small.splitlines())


def test_generated_programs_terminate():
    for seed in range(10):
        program = assemble(parse(generate_program(seed)))
        core = FastCore(program)
        result = core.run(max_instructions=300_000)
        assert result.halted
