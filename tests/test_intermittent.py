"""Tests for the intermittent fault class (bursty marginal hardware)."""

import pytest

from repro.faults.campaign import Campaign
from repro.faults.model import (
    INTERMITTENT,
    INTERMITTENT_BURST,
    INTERMITTENT_PERIOD,
    FaultSchedule,
    FaultSpec,
    PERMANENT,
    TRANSIENT,
)
from repro.faults.injector import SignalInjector
from repro.toolchain import embed_program

SMALL = """
start:  li   r1, 30
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        halt
        .data
buf:    .word 0
"""


@pytest.fixture(scope="module")
def campaign():
    return Campaign(embedded=embed_program(SMALL), seed=2)


class TestSchedule:
    def test_burst_duty_cycle(self):
        spec = FaultSpec("ex.alu.result", 1)
        injector = SignalInjector(spec)
        schedule = FaultSchedule(spec, INTERMITTENT, inject_at=10)
        active_steps = []
        for step in range(10, 10 + 2 * INTERMITTENT_PERIOD):
            schedule.before_step(step, injector, None)
            if injector.enabled:
                active_steps.append(step)
        assert len(active_steps) == 2 * INTERMITTENT_BURST
        assert active_steps[0] == 10
        assert active_steps[INTERMITTENT_BURST] == 10 + INTERMITTENT_PERIOD

    def test_inactive_before_injection(self):
        spec = FaultSpec("ex.alu.result", 1)
        injector = SignalInjector(spec)
        schedule = FaultSchedule(spec, INTERMITTENT, inject_at=50)
        for step in range(50):
            schedule.before_step(step, injector, None)
            assert not injector.enabled

    def test_transient_removed_on_divergence(self):
        spec = FaultSpec("ex.alu.result", 1)
        injector = SignalInjector(spec)
        schedule = FaultSchedule(spec, TRANSIENT, inject_at=0)
        schedule.before_step(0, injector, None)
        assert injector.enabled
        schedule.deactivate_on_divergence(injector)
        schedule.before_step(1, injector, None)
        assert not injector.enabled

    def test_permanent_never_removed(self):
        spec = FaultSpec("ex.alu.result", 1)
        injector = SignalInjector(spec)
        schedule = FaultSchedule(spec, PERMANENT, inject_at=0)
        schedule.before_step(0, injector, None)
        schedule.deactivate_on_divergence(injector)  # no-op for permanents
        assert injector.enabled


class TestIntermittentCampaign:
    def test_intermittent_alu_fault_detected(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("ex.alu.result", 1 << 5), INTERMITTENT, inject_at=5)
        assert result.detected
        assert not result.masked

    def test_intermittent_checker_fault_is_dme(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("chk.adder.sum", 1 << 3), INTERMITTENT, inject_at=0)
        assert result.masked
        assert result.detected

    def test_intermittent_state_fault_reupsets_each_burst(self, campaign):
        result = campaign.run_experiment(
            FaultSpec("state.rf.value", 1 << 4, index=2, is_state=True),
            INTERMITTENT, inject_at=3)
        # r2 is the live accumulator: the repeated upsets must surface.
        assert result.detected or not result.masked

    def test_summary_runs_for_intermittent(self, campaign):
        summary = campaign.run(experiments=25, duration=INTERMITTENT)
        assert summary.total == 25
        assert summary.duration == INTERMITTENT
