"""Tests for the campaign service (store, scheduler, HTTP API, recovery).

The contract under test: a campaign submitted over HTTP produces
quadrant summaries *bit-identical* to a direct ``Campaign.run`` with the
same seed, identical experiments across jobs are content-addressed
cache hits, and a SIGKILL mid-job followed by a server restart
completes the job with zero lost and zero duplicated experiment
records.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT
from repro.runner import Journal, plan_campaign
from repro.service import (CampaignSpec, JobScheduler, ResultStore,
                           ServiceClient, ServiceError, ServiceServer,
                           SpecError, binary_digest, experiment_key)
from repro.service.store import plan_keys
from repro.toolchain import embed_program

SMALL = """
start:  li   r1, 6
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

SEED = 11
EXPERIMENTS = 16


def small_spec(**overrides):
    spec = {"source": SMALL, "workload": None, "experiments": EXPERIMENTS,
            "duration": "transient", "seed": SEED}
    spec.update(overrides)
    return spec


def direct_summary(experiments=EXPERIMENTS, seed=SEED):
    return Campaign(embedded=embed_program(SMALL), seed=seed).run(
        experiments=experiments, duration=TRANSIENT, workers=1)


def quadrants(summary):
    return {
        "unmasked_undetected": summary.unmasked_undetected,
        "unmasked_detected": summary.unmasked_detected,
        "masked_undetected": summary.masked_undetected,
        "masked_detected": summary.masked_detected,
    }


@pytest.fixture()
def service(tmp_path):
    """An in-process server on a real localhost socket."""
    store = ResultStore(":memory:")
    scheduler = JobScheduler(store, str(tmp_path), workers=1,
                             job_runners=2).start()
    server = ServiceServer(scheduler, port=0)
    host, port = server.start_in_thread()
    client = ServiceClient("http://%s:%d" % (host, port))
    yield client, scheduler, store
    server.stop()
    scheduler.shutdown(wait=True, timeout=10)
    store.close()


# -- content-addressed store -------------------------------------------------

class TestStore:
    def test_put_get_roundtrip_and_idempotence(self):
        store = ResultStore(":memory:")
        record = {"detected": True, "checker": "parity"}
        assert store.put("k1", "transient/000000", record)
        assert not store.put("k1", "transient/000000", record)  # idempotent
        assert store.get("k1") == record
        assert store.get("missing") is None
        assert len(store) == 1
        assert "k1" in store and "missing" not in store

    def test_get_many_counts_hits_and_misses(self):
        store = ResultStore(":memory:")
        store.put("a", "id/a", {"x": 1})
        found = store.get_many(["a", "b", "c"])
        assert found == {"a": {"x": 1}}
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert 0.0 < stats["hit_rate"] < 1.0

    def test_experiment_key_is_stable_and_sensitive(self):
        embedded = embed_program(SMALL)
        digest = binary_digest(embedded)
        assert digest == binary_digest(embed_program(SMALL))
        campaign = Campaign(embedded=embedded, seed=SEED)
        plan = plan_campaign(campaign.points, 4, TRANSIENT, seed=SEED)
        exp = plan.experiments[0]
        key = experiment_key(digest, exp, 1.25)
        assert key == experiment_key(digest, exp, 1.25)
        assert key != experiment_key(digest, exp, 1.5)  # slack is outcome-relevant
        assert key != experiment_key("0" * 64, exp, 1.25)
        assert key != experiment_key(digest, plan.experiments[1], 1.25)

    def test_journal_import_export_roundtrip(self, tmp_path):
        campaign = Campaign(embedded=embed_program(SMALL), seed=SEED)
        plan = plan_campaign(campaign.points, 6, TRANSIENT, seed=SEED)
        journal_path = str(tmp_path / "direct.jsonl")
        campaign.run(experiments=6, duration=TRANSIENT, workers=1,
                     journal=journal_path)
        digest = binary_digest(campaign.embedded)
        keys = plan_keys(digest, plan, campaign.run_slack)

        store = ResultStore(str(tmp_path / "store.sqlite"))
        assert store.import_journal(journal_path, keys) == 6
        export_path = str(tmp_path / "export.jsonl")
        assert store.export_journal(export_path, keys, plan=plan) == 6

        original = Journal(journal_path).load()
        exported = Journal(export_path).load()
        assert exported.records == original.records
        assert exported.plans == original.plans


# -- spec validation ---------------------------------------------------------

class TestSpec:
    def test_rejects_unknown_fields_and_bad_values(self):
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"experimnets": 10})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"workload": "not-a-workload"})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"duration": "forever"})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"experiments": 0})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict({"experiments": "many"})
        with pytest.raises(SpecError):
            CampaignSpec.from_dict([1, 2])

    def test_roundtrips_and_builds_campaigns(self):
        spec = CampaignSpec.from_dict(small_spec())
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec
        campaign = spec.build_campaign()
        assert campaign.seed == SEED

    def test_http_submit_rejects_bad_specs_with_400(self, service):
        client, _scheduler, _store = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"workload": "nope"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"bogus_field": 1})
        assert excinfo.value.status == 400


# -- end-to-end over a real socket ------------------------------------------

class TestEndToEnd:
    def test_submitted_job_matches_direct_run(self, service):
        client, _scheduler, _store = service
        job = client.submit(small_spec())
        assert job["state"] == "queued"
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        assert final["executed"] == EXPERIMENTS
        assert final["cached"] == 0

        direct = direct_summary()
        summary = final["summaries"]["transient"]
        assert summary["quadrants"] == quadrants(direct)
        assert summary["checker_counts"] == direct.checker_counts

        # the results download is the journal: every experiment exactly once
        records = client.results(job["id"])
        assert len(records) == EXPERIMENTS

    def test_health_metrics_and_404(self, service):
        client, _scheduler, _store = service
        assert client.healthz()["ok"] is True
        metrics = client.metrics()
        for field in ("queue_depth", "cache_hit_rate", "worker_utilization",
                      "throughput_experiments_per_second", "store"):
            assert field in metrics
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-doesnotexist")
        assert excinfo.value.status == 404

    def test_event_stream_carries_progress(self, service):
        client, _scheduler, _store = service
        job = client.submit(small_spec(experiments=6))
        events = list(client.events(job["id"], timeout=180))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "finish"
        assert kinds.count("experiment") == 6
        assert events[-1]["completed"] == 6

    def test_identical_resubmission_is_pure_cache_hit(self, service):
        client, _scheduler, store = service
        first = client.wait(client.submit(small_spec())["id"], timeout=180)
        assert first["cached"] == 0
        second = client.wait(client.submit(small_spec())["id"], timeout=180)
        assert second["cached"] == EXPERIMENTS
        assert second["executed"] == 0
        assert second["cache_hit_rate"] == 1.0
        # identical summaries from cache alone
        assert second["summaries"] == first["summaries"]
        assert client.metrics()["cache_hit_rate"] > 0.0
        assert store.hits >= EXPERIMENTS

    def test_overlapping_resubmission_hits_shared_prefix(self, service):
        """A larger campaign with the same seed shares its plan prefix
        (weighted sampling draws sequentially from the derived stream),
        so extending a finished campaign only simulates the new tail."""
        client, _scheduler, _store = service
        client.wait(client.submit(small_spec())["id"], timeout=180)
        bigger = client.wait(
            client.submit(small_spec(experiments=EXPERIMENTS + 8))["id"],
            timeout=180)
        assert bigger["state"] == "done"
        assert bigger["cached"] == EXPERIMENTS
        assert bigger["executed"] == 8
        direct = direct_summary(experiments=EXPERIMENTS + 8)
        assert bigger["summaries"]["transient"]["quadrants"] \
            == quadrants(direct)

    def test_four_concurrent_jobs_all_complete(self, service):
        client, _scheduler, _store = service
        ids = []
        errors = []
        lock = threading.Lock()

        def _submit(seed):
            try:
                job = client.submit(small_spec(experiments=8, seed=seed))
                with lock:
                    ids.append(job["id"])
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=_submit, args=(seed,))
                   for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(ids) == 4
        finals = [client.wait(job_id, timeout=240) for job_id in ids]
        assert all(job["state"] == "done" for job in finals)
        assert all(job["completed"] == 8 for job in finals)
        assert len(client.jobs()) == 4


# -- batch retry + backoff ---------------------------------------------------

class TestBackoff:
    def _scheduler(self, tmp_path, fail_times, delays):
        store = ResultStore(":memory:")
        scheduler = JobScheduler(store, str(tmp_path), workers=1,
                                 retries=3, backoff_base=0.25,
                                 backoff_cap=8.0, sleep=delays.append)
        real = scheduler._execute_batch
        state = {"failures": 0}

        def flaky(campaign, batch):
            if state["failures"] < fail_times:
                state["failures"] += 1
                raise OSError("synthetic worker crash")
            return real(campaign, batch)

        scheduler._execute_batch = flaky
        return scheduler, store

    def test_transient_batch_failures_back_off_exponentially(self, tmp_path):
        delays = []
        scheduler, _store = self._scheduler(tmp_path, fail_times=3,
                                            delays=delays)
        scheduler.start()
        job = scheduler.submit(small_spec(experiments=4))
        deadline = time.monotonic() + 120
        while not job.terminal and time.monotonic() < deadline:
            time.sleep(0.02)
        scheduler.shutdown(wait=True, timeout=10)
        assert job.state == "done"
        assert delays == [0.25, 0.5, 1.0]  # base * 2**attempt
        assert scheduler.metrics()["batches_retried"] == 3

    def test_persistent_batch_failure_fails_the_job(self, tmp_path):
        delays = []
        scheduler, _store = self._scheduler(tmp_path, fail_times=99,
                                            delays=delays)
        scheduler.start()
        job = scheduler.submit(small_spec(experiments=4))
        deadline = time.monotonic() + 120
        while not job.terminal and time.monotonic() < deadline:
            time.sleep(0.02)
        scheduler.shutdown(wait=True, timeout=10)
        assert job.state == "failed"
        assert "synthetic worker crash" in job.error
        assert delays == [0.25, 0.5, 1.0]  # retries exhausted after 3


# -- drain + crash recovery --------------------------------------------------

class TestRecovery:
    def test_drain_midjob_then_recover_completes_without_duplicates(
            self, tmp_path):
        store_path = str(tmp_path / "store.sqlite")
        data_dir = str(tmp_path / "data")
        store = ResultStore(store_path)
        scheduler = JobScheduler(store, data_dir, workers=1, batch_size=2)
        scheduler.start()
        job = scheduler.submit(small_spec(experiments=20))
        journal_path = scheduler.journal_path(job.job_id)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.exists(journal_path) \
                    and job.executed >= 4:
                break
            time.sleep(0.01)
        scheduler.drain()
        scheduler.shutdown(wait=True, timeout=30)
        store.close()
        assert not job.terminal  # interrupted, not failed
        done_before = len(Journal(journal_path).load().records)
        assert 0 < done_before < 20

        store = ResultStore(store_path)
        scheduler = JobScheduler(store, data_dir, workers=1)
        recovered = scheduler.recover()
        assert [j.job_id for j in recovered] == [job.job_id]
        scheduler.start()
        resumed = scheduler.get(job.job_id)
        deadline = time.monotonic() + 120
        while not resumed.terminal and time.monotonic() < deadline:
            time.sleep(0.02)
        scheduler.shutdown(wait=True, timeout=10)
        assert resumed.state == "done"
        assert resumed.resumed == done_before  # nothing re-run ...
        assert resumed.executed + resumed.cached + resumed.resumed == 20

        # ... and nothing lost or duplicated: after completion the
        # journal holds each of the 20 planned ids exactly once.
        with open(journal_path) as handle:
            ids = [json.loads(line)["id"] for line in handle
                   if json.loads(line).get("kind") == "result"]
        assert len(ids) == 20 and len(set(ids)) == 20
        direct = direct_summary(experiments=20)
        assert resumed.summaries["transient"]["quadrants"] \
            == quadrants(direct)
        store.close()


def _start_server_subprocess(data_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--data-dir", data_dir, "--batch-size", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    address_path = os.path.join(data_dir, "server.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(address_path):
            try:
                with open(address_path) as handle:
                    address = json.load(handle)
            except ValueError:
                pass  # torn write; retry
            else:
                if address.get("pid") == proc.pid:
                    return proc, address
        if proc.poll() is not None:
            raise AssertionError("server died: %s"
                                 % proc.stdout.read().decode())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never published its address")


@pytest.mark.slow
class TestKillRestart:
    def test_sigkill_midjob_then_restart_loses_and_duplicates_nothing(
            self, tmp_path):
        """The acceptance proof: SIGKILL mid-job, restart, job completes
        with every planned experiment journaled exactly once and the
        quadrants bit-identical to a direct run."""
        data_dir = str(tmp_path / "data")
        os.makedirs(data_dir)
        experiments = 24
        proc, address = _start_server_subprocess(data_dir)
        try:
            client = ServiceClient(
                "http://%s:%d" % (address["host"], address["port"]))
            job = client.submit(small_spec(experiments=experiments))
            journal_path = os.path.join(
                data_dir, "jobs", "%s.journal.jsonl" % job["id"])
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.exists(journal_path):
                    with open(journal_path) as handle:
                        done = sum(1 for line in handle
                                   if '"result"' in line)
                    if done >= 4:
                        break
                time.sleep(0.02)
            else:
                raise AssertionError("job never made progress")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()

        partial = len(Journal(journal_path).load().records)
        assert 0 < partial < experiments  # genuinely mid-job

        proc, address = _start_server_subprocess(data_dir)
        try:
            client = ServiceClient(
                "http://%s:%d" % (address["host"], address["port"]))
            final = client.wait(job["id"], timeout=240, poll=0.2)
            assert final["state"] == "done"
            assert final["resumed"] >= partial

            # zero lost, zero duplicated: each planned id exactly once
            with open(journal_path) as handle:
                ids = [json.loads(line)["id"] for line in handle
                       if json.loads(line).get("kind") == "result"]
            assert len(ids) == experiments
            assert len(set(ids)) == experiments
            direct = direct_summary(experiments=experiments)
            assert final["summaries"]["transient"]["quadrants"] \
                == quadrants(direct)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
