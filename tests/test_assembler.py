"""Unit tests for layout, symbol resolution and encoding."""

import pytest

from repro.asm import assemble, parse
from repro.asm.assembler import AsmError
from repro.isa.decode import decode
from repro.isa.opcodes import Op


def asm(source, **kwargs):
    return assemble(parse(source), **kwargs)


class TestLayout:
    def test_text_base_default(self):
        program = asm("start: nop\nhalt")
        assert program.text_base == 0x1000
        assert program.entry == 0x1000

    def test_entry_defaults_to_text_base_without_start(self):
        program = asm("nop\nhalt")
        assert program.entry == program.text_base

    def test_words_are_contiguous(self):
        program = asm("nop\nnop\nhalt")
        assert len(program.words) == 3
        assert program.text_size == 12

    def test_labels_resolve_to_instruction_addresses(self):
        program = asm("a: nop\nb: nop\nhalt")
        assert program.addr_of("a") == 0x1000
        assert program.addr_of("b") == 0x1004

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            asm("a: nop\na: halt")

    def test_custom_text_base(self):
        program = asm("start: halt", text_base=0x2000)
        assert program.entry == 0x2000

    def test_misaligned_text_base_rejected(self):
        with pytest.raises(AsmError):
            asm("halt", text_base=0x1002)

    def test_data_base_after_text(self):
        program = asm("halt\n.data\nv: .word 7")
        assert program.data_base >= program.text_end
        assert program.data_base % 256 == 0

    def test_data_base_overlap_rejected(self):
        with pytest.raises(AsmError):
            asm("halt\n.data\n.word 1", data_base=0x1000)


class TestBranches:
    def test_backward_branch_offset(self):
        program = asm("loop: nop\nbf loop\nnop\nhalt")
        instr = decode(program.words[1])
        assert instr.op is Op.BF
        assert instr.offset == -1

    def test_forward_jump(self):
        program = asm("j end\nnop\nend: halt")
        assert decode(program.words[0]).offset == 2

    def test_jal_target(self):
        program = asm("jal fn\nnop\nhalt\nfn: ret\nnop")
        assert decode(program.words[0]).offset == 3

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            asm("j nowhere\nnop")


class TestDataSection:
    def test_word_values(self):
        program = asm("halt\n.data\nv: .word 1, -1, 0x7FFFFFFF")
        base = program.addr_of("v") - program.data_base
        assert program.data[base:base + 4] == (1).to_bytes(4, "little")
        assert program.data[base + 4:base + 8] == b"\xff\xff\xff\xff"

    def test_half_and_byte(self):
        program = asm("halt\n.data\nh: .half 0x1234\nb: .byte 0xAB")
        off_h = program.addr_of("h") - program.data_base
        off_b = program.addr_of("b") - program.data_base
        assert program.data[off_h:off_h + 2] == b"\x34\x12"
        assert program.data[off_b] == 0xAB

    def test_word_after_byte_is_aligned(self):
        program = asm("halt\n.data\n.byte 1\nw: .word 2")
        assert program.addr_of("w") % 4 == 0

    def test_label_binds_to_aligned_item(self):
        program = asm("halt\n.data\n.byte 1\nlbl: .word 9")
        off = program.addr_of("lbl") - program.data_base
        assert program.data[off:off + 4] == (9).to_bytes(4, "little")

    def test_space_reserves_zeroed_bytes(self):
        program = asm("halt\n.data\ns: .space 16\nafter: .byte 1")
        assert program.addr_of("after") - program.addr_of("s") == 16

    def test_align(self):
        program = asm("halt\n.data\n.byte 1\n.align 8\nlbl: .byte 2")
        assert (program.addr_of("lbl") - program.data_base) % 8 == 0

    def test_word_of_label_address(self):
        program = asm("start: halt\n.data\nptr: .word start")
        off = program.addr_of("ptr") - program.data_base
        assert int.from_bytes(program.data[off:off + 4], "little") == 0x1000

    def test_codeptr_site_recorded(self):
        program = asm("start: halt\n.data\ntab: .codeptr start")
        assert program.codeptr_sites == [(program.addr_of("tab"), "start")]

    def test_instructions_in_data_rejected(self):
        with pytest.raises(AsmError):
            asm(".data\nnop")

    def test_directives_in_text_rejected(self):
        with pytest.raises(AsmError):
            asm(".word 1\nhalt")


class TestEncodingThroughAssembler:
    def test_sig_terminator_bit(self):
        program = asm("sig 1\nhalt")
        assert program.words[0] & (1 << 25)
        program = asm("sig\nhalt")
        assert not program.words[0] & (1 << 25)

    def test_sig_bad_operand(self):
        with pytest.raises(AsmError):
            asm("sig 2\nhalt")

    def test_store_operand_order(self):
        program = asm("sw r7, 12(r3)\nhalt")
        instr = decode(program.words[0])
        assert (instr.rb, instr.ra, instr.imm) == (7, 3, 12)

    def test_load_symbolic_offset(self):
        program = asm("lwz r1, v(r0)\nhalt\n.data\nv: .word 3")
        instr = decode(program.words[0])
        assert instr.imm == program.addr_of("v")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            asm("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            asm("add r1, r2")

    def test_compare_immediate_forms(self):
        program = asm("sfgtsi r3, -5\nhalt")
        instr = decode(program.words[0])
        assert instr.op is Op.SFI
        assert instr.imm == -5

    def test_word_at_and_set_word(self):
        program = asm("nop\nhalt")
        addr = program.text_base
        original = program.word_at(addr)
        program.set_word(addr, 0xDEADBEEF)
        assert program.word_at(addr) == 0xDEADBEEF != original
        with pytest.raises(IndexError):
            program.word_at(addr + 0x100)


class TestEquConstants:
    def test_equ_usable_as_immediate(self):
        program = asm(".equ LIMIT, 42\naddi r1, r0, LIMIT\nhalt")
        instr = decode(program.words[0])
        assert instr.imm == 42

    def test_equ_with_hi_lo(self):
        program = asm(".equ BASE, 0x12345678\nmovhi r1, %hi(BASE)\n"
                      "ori r1, r1, %lo(BASE)\nhalt")
        assert decode(program.words[0]).imm == 0x1234
        assert decode(program.words[1]).imm == 0x5678

    def test_equ_in_memory_offset(self):
        program = asm(".equ OFF, 8\nlwz r1, OFF(r2)\nhalt")
        assert decode(program.words[0]).imm == 8

    def test_set_alias(self):
        program = asm(".set N, 3\naddi r1, r0, N\nhalt")
        assert decode(program.words[0]).imm == 3

    def test_equ_label_collision_rejected(self):
        with pytest.raises(AsmError):
            asm(".equ start, 5\nstart: halt")

    def test_bad_equ_rejected(self):
        with pytest.raises(AsmError):
            asm(".equ 5, LIMIT\nhalt")
