"""Tests for the federated campaign fabric (topology, coordinator, CLI).

The contract under test: a campaign sharded across N job-service nodes
produces quadrant summaries *bit-identical* to a single-node
``Campaign.run`` with the same seed; killing a node mid-campaign loses
and duplicates nothing (work is stolen back and the coordinator journal
holds every planned experiment id exactly once); and the fleet's stores
behave as one merged content-addressed cache.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT
from repro.runner import Journal, plan_campaign
from repro.runner.journal import result_to_record
from repro.service import (CampaignSpec, JobScheduler, ResultStore,
                           ServiceClient, ServiceError, ServiceServer,
                           SpecError)
from repro.fabric import (FabricCoordinator, FabricError, Peer, PeerStore,
                          Topology, TopologyError, run_fabric_campaign)
from repro.toolchain import embed_program

SMALL = """
start:  li   r1, 6
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        mul  r3, r2, r2
        sw   r3, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

SEED = 11
EXPERIMENTS = 16


def small_spec(**overrides):
    spec = {"source": SMALL, "workload": None, "experiments": EXPERIMENTS,
            "duration": "transient", "seed": SEED}
    spec.update(overrides)
    return spec


def direct_summary(experiments=EXPERIMENTS, seed=SEED):
    return Campaign(embedded=embed_program(SMALL), seed=seed).run(
        experiments=experiments, duration=TRANSIENT, workers=1)


def identical(fleet, direct):
    return (fleet.total == direct.total
            and fleet.fractions() == direct.fractions()
            and fleet.checker_counts == direct.checker_counts)


class Fleet:
    """N in-process service nodes on real localhost sockets."""

    def __init__(self, tmp_path, n, remote_store=True):
        self.nodes = []
        self.urls = []
        for index in range(n):
            data_dir = str(tmp_path / ("node%d" % index))
            os.makedirs(data_dir)
            store = ResultStore(os.path.join(data_dir, "store.sqlite"))
            scheduler = JobScheduler(store, data_dir, workers=1)
            server = ServiceServer(scheduler, port=0)
            self.nodes.append({"store": store, "scheduler": scheduler,
                               "server": server, "alive": True})
        for node in self.nodes:
            host, port = node["server"].start_in_thread()
            self.urls.append("http://%s:%d" % (host, port))
        if remote_store:
            # Each node answers cache misses from its peers' stores.
            for index, node in enumerate(self.nodes):
                peer_view = Topology.from_urls(self.urls,
                                               self_url=self.urls[index])
                node["scheduler"].remote_store = PeerStore(peer_view)
        for node in self.nodes:
            node["scheduler"].start()

    def topology(self, **kwargs):
        return Topology.from_urls(self.urls, **kwargs)

    def kill(self, index):
        """Hard-stop one node (its port goes dark like a crash)."""
        node = self.nodes[index]
        if not node["alive"]:
            return
        node["server"].stop()
        node["scheduler"].shutdown(wait=False)
        node["alive"] = False

    def close(self):
        for index in range(len(self.nodes)):
            self.kill(index)
        for node in self.nodes:
            node["store"].close()


@pytest.fixture()
def fleet3(tmp_path):
    fleet = Fleet(tmp_path, 3)
    yield fleet
    fleet.close()


# -- topology ----------------------------------------------------------------

class TestTopology:
    def test_load_save_roundtrip_and_validation(self, tmp_path):
        path = str(tmp_path / "topo.json")
        topo = Topology.from_urls(
            ["http://127.0.0.1:1", "127.0.0.1:2/"])
        topo.save(path)
        loaded = Topology.load(path)
        assert [p.url for p in loaded.peers] == \
            ["http://127.0.0.1:1", "http://127.0.0.1:2"]
        assert [p.name for p in loaded.peers] == ["peer-0", "peer-1"]

        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as handle:
            handle.write("{not json")
        with pytest.raises(TopologyError):
            Topology.load(bad)
        with open(bad, "w") as handle:
            json.dump({"peers": []}, handle)
        with pytest.raises(TopologyError):
            Topology.load(bad)
        with open(bad, "w") as handle:
            json.dump({"peers": [{"name": "no-url"}]}, handle)
        with pytest.raises(TopologyError):
            Topology.load(bad)
        with pytest.raises(TopologyError):
            Topology([])

    def test_probe_marks_dead_after_fail_after_then_rejoins(self, fleet3):
        # One real node plus one black-hole peer.
        topo = Topology([Peer(name="live", url=fleet3.urls[0]),
                         Peer(name="hole", url="http://127.0.0.1:1")],
                        fail_after=2)
        topo.probe_all()
        live, hole = topo.peers
        assert live.alive and live.failures == 0
        assert live.load["queue_depth"] == 0
        assert hole.alive and hole.failures == 1  # not yet at fail_after
        topo.probe_all()
        assert not hole.alive and hole.last_error
        assert [p.name for p in topo.alive()] == ["live"]
        # A restarted node rejoins on its first successful probe.
        hole.url = fleet3.urls[1]
        topo._clients.pop("http://127.0.0.1:1", None)
        assert topo.probe(hole)
        assert hole.alive and hole.failures == 0

    def test_alive_excludes_self(self, fleet3):
        topo = fleet3.topology(self_url=fleet3.urls[0])
        assert fleet3.urls[0] not in [p.url for p in topo.alive()]
        topo2 = fleet3.topology()
        topo2.set_self(fleet3.urls[1])
        assert fleet3.urls[1] not in [p.url for p in topo2.alive()]

    def test_mark_failure_counts_toward_threshold(self):
        topo = Topology.from_urls(["http://127.0.0.1:1"], fail_after=2)
        peer = topo.peers[0]
        assert topo.mark_failure(peer, "submit: boom")
        assert not topo.mark_failure(peer, "submit: boom")
        assert not peer.alive


# -- store exchange (the fabric cache wire) ----------------------------------

class TestStoreExchange:
    def test_store_endpoints_roundtrip(self, fleet3):
        client = ServiceClient(fleet3.urls[0])
        record = {"detected": True, "checker": "parity"}
        assert client.store_sync([("k1", "transient/000000", record)]) == 1
        assert client.store_sync([("k1", "transient/000000", record)]) == 0
        assert client.store_get("k1") == record
        assert client.store_get("missing") is None
        found = client.store_lookup(["k1", "missing"])
        assert found == {"k1": record}

    def test_peers_endpoint_reports_topology(self, fleet3):
        client = ServiceClient(fleet3.urls[0])
        assert client.peers() == {"peers": []}  # standalone: no topology

    def test_peer_store_merges_peers_and_survives_dead_ones(self, fleet3):
        ServiceClient(fleet3.urls[0]).store_sync([("ka", "t/0", {"a": 1})])
        ServiceClient(fleet3.urls[1]).store_sync([("kb", "t/1", {"b": 2})])
        topo = Topology(
            [Peer(name="dead", url="http://127.0.0.1:1"),
             Peer(name="a", url=fleet3.urls[0]),
             Peer(name="b", url=fleet3.urls[1])],
            fail_after=1, client_timeout=2.0)
        peer_store = PeerStore(topo)
        assert peer_store.lookup(["ka", "kb", "kc"]) == \
            {"ka": {"a": 1}, "kb": {"b": 2}}
        assert not topo.peers[0].alive  # the dead peer got marked

    def test_remote_store_hit_skips_execution(self, fleet3):
        """A campaign node B already ran is a pure cache hit on node A."""
        client_b = ServiceClient(fleet3.urls[1])
        done = client_b.wait(client_b.submit(small_spec())["id"],
                             timeout=180)
        assert done["executed"] == EXPERIMENTS
        client_a = ServiceClient(fleet3.urls[0])
        job = client_a.wait(client_a.submit(small_spec())["id"], timeout=180)
        assert job["state"] == "done"
        assert job["executed"] == 0
        assert job["cached"] == EXPERIMENTS
        assert job["summaries"] == done["summaries"]
        metrics = client_a.metrics()
        assert metrics["remote_store_hits"] == EXPERIMENTS


# -- /metrics counters (satellite) -------------------------------------------

class TestMetricsCounters:
    def test_metrics_exposes_store_http_and_queue_gauges(self, fleet3):
        client = ServiceClient(fleet3.urls[2])
        client.healthz()
        client.store_lookup(["nope"])
        metrics = client.metrics()
        assert metrics["store_misses"] >= 1
        assert "store_hits" in metrics and "store_rows" in metrics
        assert metrics["queue_depth"] == 0
        requests = metrics["http_requests"]
        assert requests["GET /healthz"] >= 1
        assert requests["POST /store/lookup"] >= 1
        assert requests["GET /metrics"] >= 1

    def test_request_labels_are_cardinality_safe(self, fleet3):
        client = ServiceClient(fleet3.urls[2])
        client.store_get("deadbeef")
        client.store_get("cafebabe")
        for job_id in ("job-x", "job-y"):
            with pytest.raises(ServiceError):
                client.job(job_id)
        requests = client.metrics()["http_requests"]
        assert requests["GET /store/<key>"] >= 2
        assert requests["GET /jobs/<id>"] >= 2
        assert not any("deadbeef" in label or "job-x" in label
                       for label in requests)


# -- client GET retry (satellite) --------------------------------------------

class _FlakyServer(threading.Thread):
    """Accepts TCP connections; resets the first ``failures`` of them,
    then answers any request with a tiny JSON 200."""

    def __init__(self, failures):
        super().__init__(daemon=True)
        self.failures = failures
        self.accepted = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._shutdown = threading.Event()

    def run(self):
        self._sock.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            self.accepted += 1
            if self.accepted <= self.failures:
                conn.close()  # -> RemoteDisconnected (a ConnectionError)
                continue
            try:
                conn.recv(65536)
                body = b'{"ok": true}\n'
                conn.sendall(b"HTTP/1.1 200 OK\r\n"
                             b"Content-Type: application/json\r\n"
                             b"Content-Length: %d\r\n"
                             b"Connection: close\r\n\r\n" % len(body) + body)
            finally:
                conn.close()

    def stop(self):
        self._shutdown.set()
        self.join(timeout=5)
        self._sock.close()


class TestClientRetry:
    def test_get_retries_reset_connections_with_backoff(self):
        server = _FlakyServer(failures=2)
        server.start()
        try:
            delays = []
            client = ServiceClient("http://127.0.0.1:%d" % server.port,
                                   retries=3, sleep=delays.append)
            assert client.healthz() == {"ok": True}
            assert server.accepted == 3
            assert delays == [0.1, 0.2]  # bounded exponential backoff
        finally:
            server.stop()

    def test_get_gives_up_after_bounded_retries(self):
        server = _FlakyServer(failures=99)
        server.start()
        try:
            client = ServiceClient("http://127.0.0.1:%d" % server.port,
                                   retries=2, sleep=lambda _s: None)
            with pytest.raises(ConnectionError):
                client.healthz()
            assert server.accepted == 3  # 1 try + 2 retries
        finally:
            server.stop()

    def test_post_never_retries(self):
        server = _FlakyServer(failures=99)
        server.start()
        try:
            client = ServiceClient("http://127.0.0.1:%d" % server.port,
                                   retries=5, sleep=lambda _s: None)
            with pytest.raises(ConnectionError):
                client.submit({"experiments": 1})
            assert server.accepted == 1
        finally:
            server.stop()

    def test_refused_connection_retries_then_raises(self):
        delays = []
        client = ServiceClient("http://127.0.0.1:1", retries=2,
                               sleep=delays.append)
        with pytest.raises(ConnectionError):
            client.healthz()
        assert delays == [0.1, 0.2]
        with pytest.raises(ConnectionError):
            client.healthz(retries=0)  # prober mode: fail fast
        assert delays == [0.1, 0.2]


# -- plan slicing ------------------------------------------------------------

class TestPlanSlicing:
    def test_slice_preserves_global_identity(self):
        campaign = Campaign(embedded=embed_program(SMALL), seed=SEED)
        plan = plan_campaign(campaign.points, 12, TRANSIENT, seed=SEED)
        part = plan.slice(4, 8)
        assert part.ids == plan.ids[4:8]
        assert [e.seed for e in part] == [e.seed for e in plan][4:8]
        assert [e.index for e in part] == [4, 5, 6, 7]
        assert plan.slice(-3, None).ids == plan.ids
        assert len(plan.slice(10, 99)) == 2

    def test_spec_slice_validation(self):
        spec = CampaignSpec.from_dict(small_spec(plan_start=0, plan_stop=8))
        assert spec.sliced
        assert not CampaignSpec.from_dict(small_spec()).sliced
        for bad in ({"plan_start": 2}, {"plan_stop": 2},
                    {"plan_start": -1, "plan_stop": 4},
                    {"plan_start": 4, "plan_stop": 4},
                    {"plan_start": 0, "plan_stop": EXPERIMENTS + 1},
                    {"plan_start": "x", "plan_stop": 4}):
            with pytest.raises(SpecError):
                CampaignSpec.from_dict(small_spec(**bad))

    def test_sliced_jobs_union_to_the_full_campaign(self, fleet3, tmp_path):
        direct_journal = str(tmp_path / "direct.jsonl")
        Campaign(embedded=embed_program(SMALL), seed=SEED).run(
            experiments=EXPERIMENTS, duration=TRANSIENT, workers=1,
            journal=direct_journal)
        expected = Journal(direct_journal).load().records

        client = ServiceClient(fleet3.urls[0])
        merged = {}
        for start, stop in ((0, 6), (6, EXPERIMENTS)):
            job = client.wait(
                client.submit(small_spec(plan_start=start,
                                         plan_stop=stop))["id"],
                timeout=180)
            assert job["state"] == "done"
            assert job["completed"] == stop - start
            merged.update(client.results(job["id"]))
        assert merged == expected


# -- the coordinator ---------------------------------------------------------

class TestFabricCoordinator:
    def test_three_node_fleet_is_bit_identical_to_direct(
            self, fleet3, tmp_path):
        journal = str(tmp_path / "coord.jsonl")
        summaries, coord = run_fabric_campaign(
            small_spec(), fleet3.topology(probe_interval=0.2), journal,
            poll=0.02, steal_after=30.0)
        assert identical(summaries["transient"], direct_summary())
        status = coord.status()
        assert status["completed_experiments"] == EXPERIMENTS
        assert status["batch_states"] == {"done": status["batches"]}
        assert status["dispatched"] >= status["batches"]
        # exactly-once: the compacted journal holds each planned id once
        campaign = Campaign(embedded=embed_program(SMALL), seed=SEED)
        plan = plan_campaign(campaign.points, EXPERIMENTS, TRANSIENT,
                             seed=SEED)
        records = Journal(journal).load().records
        assert sorted(records) == sorted(plan.ids)
        with open(journal) as handle:
            ids = [json.loads(line)["id"] for line in handle
                   if '"result"' in line]
        assert len(ids) == len(set(ids)) == EXPERIMENTS

    def test_node_death_mid_campaign_loses_nothing(self, fleet3, tmp_path):
        experiments = 48
        topology = fleet3.topology(probe_interval=0.1, fail_after=1)
        coordinator = FabricCoordinator(
            small_spec(experiments=experiments), topology,
            str(tmp_path / "coord.jsonl"), batch_experiments=4,
            poll=0.02, steal_after=5.0)
        failures = []

        def _run():
            try:
                coordinator.run(timeout=300)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=_run)
        thread.start()
        deadline = time.monotonic() + 60
        while coordinator.dispatched < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        fleet3.kill(0)
        thread.join(timeout=300)
        assert not thread.is_alive()
        assert failures == []
        assert identical(coordinator.summaries["transient"],
                         direct_summary(experiments=experiments))
        dead = [p for p in coordinator.status()["peers"] if not p["alive"]]
        assert [p["url"] for p in dead] == [fleet3.urls[0]]

    def test_resume_reuses_the_journal_without_redispatch(
            self, fleet3, tmp_path):
        journal = str(tmp_path / "coord.jsonl")
        first, _ = run_fabric_campaign(
            small_spec(), fleet3.topology(), journal, poll=0.02)
        second, coord = run_fabric_campaign(
            small_spec(), fleet3.topology(), journal, poll=0.02)
        assert coord.dispatched == 0  # every batch was already journaled
        assert identical(second["transient"], first["transient"])

    def test_partial_journal_resumes_only_the_missing_slice(
            self, fleet3, tmp_path):
        """Pre-seed half the campaign in the journal; only the rest is
        dispatched, and the aggregate is still bit-identical."""
        campaign = Campaign(embedded=embed_program(SMALL), seed=SEED)
        plan = plan_campaign(campaign.points, EXPERIMENTS, TRANSIENT,
                             seed=SEED)
        journal_path = str(tmp_path / "coord.jsonl")
        journal = Journal(journal_path)
        journal.ensure_header()
        journal.register_plan(plan)
        for exp in plan.experiments[:EXPERIMENTS // 2]:
            journal.append_result(exp.experiment_id, result_to_record(
                campaign.run_planned(exp)))
        journal.close()

        summaries, coord = run_fabric_campaign(
            small_spec(), fleet3.topology(), journal_path,
            batch_experiments=EXPERIMENTS // 2, poll=0.02)
        assert coord.dispatched == 1  # the seeded half never re-dispatches
        assert identical(summaries["transient"], direct_summary())

    def test_rejects_sliced_specs_and_dead_fleets(self, tmp_path):
        with pytest.raises(FabricError):
            FabricCoordinator(
                small_spec(plan_start=0, plan_stop=4),
                Topology.from_urls(["http://127.0.0.1:1"]),
                str(tmp_path / "j.jsonl"))
        coordinator = FabricCoordinator(
            small_spec(experiments=4),
            Topology.from_urls(["http://127.0.0.1:1"], fail_after=1,
                               probe_interval=0.1, client_timeout=1.0),
            str(tmp_path / "j2.jsonl"), poll=0.02)
        with pytest.raises(FabricError):
            coordinator.run(timeout=1.0)


# -- whole-fleet kill test over real processes -------------------------------

def _free_ports(n):
    sockets = [socket.socket() for _ in range(n)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _start_fabric_node(data_dir, port, topology_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fabric", "serve",
         "--port", str(port), "--data-dir", data_dir,
         "--topology", topology_path, "--probe-interval", "0.3"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    address_path = os.path.join(data_dir, "server.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if os.path.exists(address_path):
            try:
                with open(address_path) as handle:
                    address = json.load(handle)
            except ValueError:
                pass  # torn write; retry
            else:
                if address.get("pid") == proc.pid:
                    return proc, address
        if proc.poll() is not None:
            raise AssertionError("fabric node died: %s"
                                 % proc.stdout.read().decode())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("fabric node never published its address")


@pytest.mark.slow
class TestKillNodeMidCampaign:
    def test_sigkill_one_node_completes_exactly_once(self, tmp_path):
        """The acceptance proof over real processes: three ``fabric
        serve`` nodes, SIGKILL one mid-campaign, and the coordinator
        still finishes with every planned experiment id exactly once
        and quadrants bit-identical to a direct run."""
        experiments = int(os.environ.get("ARGUS_FABRIC_TEST_EXPERIMENTS",
                                         "48"))
        ports = _free_ports(3)
        topology_path = str(tmp_path / "topology.json")
        with open(topology_path, "w") as handle:
            json.dump({"peers": [
                {"name": "node-%d" % i, "url": "http://127.0.0.1:%d" % p}
                for i, p in enumerate(ports)]}, handle)
        procs = []
        try:
            for index, port in enumerate(ports):
                data_dir = str(tmp_path / ("node%d" % index))
                os.makedirs(data_dir)
                proc, _addr = _start_fabric_node(data_dir, port,
                                                 topology_path)
                procs.append(proc)

            topology = Topology.load(topology_path, probe_interval=0.2,
                                     fail_after=1, client_timeout=5.0)
            coordinator = FabricCoordinator(
                small_spec(experiments=experiments), topology,
                str(tmp_path / "coord.jsonl"), batch_experiments=4,
                poll=0.05, steal_after=10.0)
            failures = []

            def _run():
                try:
                    coordinator.run(timeout=600)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)

            thread = threading.Thread(target=_run)
            thread.start()
            deadline = time.monotonic() + 120
            while coordinator.dispatched < 3 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            os.kill(procs[0].pid, signal.SIGKILL)
            procs[0].wait(timeout=30)
            thread.join(timeout=600)
            assert not thread.is_alive()
            assert failures == []
            assert identical(coordinator.summaries["transient"],
                             direct_summary(experiments=experiments))
            records = Journal(str(tmp_path / "coord.jsonl")).load().records
            campaign = Campaign(embedded=embed_program(SMALL), seed=SEED)
            plan = plan_campaign(campaign.points, experiments, TRANSIENT,
                                 seed=SEED)
            assert sorted(records) == sorted(plan.ids)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=30)
