"""Unit tests for DCS computation and payload embedding/extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.argus.dcs import DCS_MASK, PERMUTATION, compute_dcs, dcs_of_file
from repro.argus.payload import (
    PayloadCollector,
    PayloadError,
    embed_bits,
    fields_to_bits,
    payload_capacity,
    payload_fields,
    payload_positions,
    sig_is_terminator,
    sig_word,
    terminal_kind,
)
from repro.argus.shs import NUM_LOCATIONS, ShsFile, initial_shs
from repro.isa.decode import decode
from repro.isa.encoding import encode
from repro.isa.opcodes import Op


class TestDcs:
    def test_five_bits(self):
        assert 0 <= compute_dcs([initial_shs(i) for i in range(NUM_LOCATIONS)]) <= DCS_MASK

    def test_permutation_is_a_permutation(self):
        assert sorted(PERMUTATION) == list(range(NUM_LOCATIONS * 5))

    def test_value_change_changes_dcs_mostly(self):
        base = [initial_shs(i) for i in range(NUM_LOCATIONS)]
        reference = compute_dcs(base)
        changed = 0
        for loc in range(NUM_LOCATIONS):
            for bit in range(5):
                mutated = list(base)
                mutated[loc] ^= 1 << bit
                if compute_dcs(mutated) != reference:
                    changed += 1
        # Single-bit SHS changes always flip exactly one folded bit.
        assert changed == NUM_LOCATIONS * 5

    def test_assignment_sensitivity(self):
        """Swapping two SHS values usually changes the DCS (the permuted
        fold makes the DCS depend on *which register* holds a history);
        two-bit differences can alias with probability ~1/5."""
        base = [initial_shs(i) for i in range(NUM_LOCATIONS)]
        reference = compute_dcs(base)
        detected = 0
        total = 0
        for i in range(0, 30):
            for j in range(i + 1, 31):
                swapped = list(base)
                swapped[i], swapped[j] = swapped[j], swapped[i]
                total += 1
                if compute_dcs(swapped) != reference:
                    detected += 1
        assert detected / total > 0.70

    def test_dcs_of_file_matches_compute(self):
        shs = ShsFile()
        assert dcs_of_file(shs) == compute_dcs(shs.values)


class TestTerminalKinds:
    @pytest.mark.parametrize("op,kind", [
        (Op.BF, "cond"), (Op.BNF, "cond"), (Op.J, "jump"), (Op.JAL, "call"),
        (Op.JR, "indirect"), (Op.JALR, "indirect_call"), (Op.HALT, "halt"),
        (Op.SIG, "fallthrough"),
    ])
    def test_kinds(self, op, kind):
        assert terminal_kind(decode(encode(op))) == kind

    def test_non_terminal_rejected(self):
        with pytest.raises(PayloadError):
            terminal_kind(decode(encode(Op.ADD)))

    @pytest.mark.parametrize("kind,fields", [
        ("cond", ("taken", "fallthrough")),
        ("jump", ("target",)),
        ("call", ("target", "link")),
        ("indirect", ()),
        ("indirect_call", ("link",)),
        ("halt", ()),
        ("fallthrough", ("next",)),
    ])
    def test_field_lists(self, kind, fields):
        assert payload_fields(kind) == fields


class TestSigWord:
    def test_terminator_flag(self):
        assert sig_is_terminator(sig_word(True))
        assert not sig_is_terminator(sig_word(False))

    def test_sig_payload_excludes_t_bit(self):
        positions = payload_positions(Op.SIG)
        assert 25 not in positions
        assert len(positions) == 25

    def test_nop_payload_is_full_spare(self):
        assert payload_capacity(Op.NOP) == 26


class TestEmbedExtract:
    def _block(self, *ops):
        words = [encode(op, rd=1, ra=2, rb=3) if op is not Op.SIG else sig_word(False)
                 for op in ops]
        return words, list(ops)

    def test_roundtrip_through_collector(self):
        words, ops = self._block(Op.ADD, Op.SUB, Op.SIG)
        values = [0x15, 0x0A]
        packed = embed_bits(words, ops, fields_to_bits(values))
        collector = PayloadCollector()
        for word, op in zip(packed, ops):
            collector.add(decode(word), word)
        fields = collector.extract("cond")
        assert fields == {"taken": 0x15, "fallthrough": 0x0A}

    def test_insufficient_capacity_raises(self):
        words, ops = self._block(Op.LWZ)
        with pytest.raises(PayloadError):
            embed_bits(words, ops, fields_to_bits([0x1F]))

    def test_extract_without_enough_bits_raises(self):
        collector = PayloadCollector()
        collector.add(decode(encode(Op.LWZ, rd=1, ra=2)))
        with pytest.raises(PayloadError):
            collector.extract("jump")

    def test_collector_reset(self):
        collector = PayloadCollector()
        collector.add(decode(sig_word(False)), sig_word(False))
        assert collector.capacity() == 25
        collector.reset()
        assert collector.capacity() == 0

    def test_zero_field_kinds_need_no_bits(self):
        collector = PayloadCollector()
        assert collector.extract("halt") == {}
        assert collector.extract("indirect") == {}

    def test_embedding_preserves_architecture(self):
        words, ops = self._block(Op.ADD, Op.SUB, Op.SIG)
        packed = embed_bits(words, ops, fields_to_bits([0x1F, 0x1F]))
        for original, new in zip(words, packed):
            a, b = decode(original), decode(new)
            assert (a.op, a.rd, a.ra, a.rb) == (b.op, b.rd, b.ra, b.rb)


@given(values=st.lists(st.integers(0, 31), min_size=1, max_size=2))
def test_embed_extract_property(values):
    """Property: any field values survive the pack/collect/extract cycle."""
    ops = [Op.ADD, Op.SIG]
    words = [encode(Op.ADD, rd=1, ra=2, rb=3), sig_word(False)]
    packed = embed_bits(words, ops, fields_to_bits(values))
    collector = PayloadCollector()
    for word, op in zip(packed, ops):
        collector.add(decode(word), word)
    kind = {1: "jump", 2: "cond"}[len(values)]
    fields = collector.extract(kind)
    assert list(fields.values()) == values
