"""Tests for the execution tracer and the command-line interface."""

import json

import pytest

from repro.cli import main as cli_main
from repro.cpu.tracer import format_profile, trace_execution
from repro.toolchain import embed_program

SOURCE = """
start:  li   r1, 4
        li   r2, 0
        la   r6, buf
loop:   add  r2, r2, r1
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        halt
        .data
buf:    .word 0
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(SOURCE)
    return str(path)


class TestTracer:
    def test_entries_capture_writebacks_and_stores(self):
        embedded = embed_program(SOURCE)
        result = trace_execution(embedded)
        assert result.halted
        assert result.entries[0].pc == embedded.program.entry
        writes = [e for e in result.entries if e.rd >= 0]
        stores = [e for e in result.entries if e.store_addr >= 0]
        assert writes and stores
        assert stores[0].store_addr == embedded.program.addr_of("buf")

    def test_block_profile_counts(self):
        embedded = embed_program(SOURCE)
        result = trace_execution(embedded)
        loop = embedded.program.addr_of("loop")
        assert result.block_profiles[loop].executions == 4
        total = sum(p.instructions for p in result.block_profiles.values())
        assert total == result.instructions

    def test_hot_blocks_ordering(self):
        embedded = embed_program(SOURCE)
        result = trace_execution(embedded)
        hot = result.hot_blocks(2)
        assert hot[0].instructions >= hot[1].instructions
        assert hot[0].start == embedded.program.addr_of("loop")

    def test_keep_entries_bounds_trace(self):
        embedded = embed_program(SOURCE)
        result = trace_execution(embedded, keep_entries=5)
        assert len(result.entries) == 5
        assert result.instructions > 5

    def test_formatting(self):
        embedded = embed_program(SOURCE)
        result = trace_execution(embedded)
        assert "loop" not in format_profile(result)  # addresses, not labels
        assert "cond" in format_profile(result)
        assert "0x" in result.entries[0].formatted()


class TestCli:
    def test_asm_plain_and_dis(self, source_file, tmp_path, capsys):
        obj = str(tmp_path / "out.aro")
        assert cli_main(["asm", source_file, "-o", obj]) == 0
        assert json.loads(open(obj).read())["kind"] == "plain"
        assert cli_main(["dis", obj]) == 0
        out = capsys.readouterr().out
        assert "addi r1, r0, 4" in out

    def test_asm_embed_and_run(self, source_file, tmp_path, capsys):
        obj = str(tmp_path / "out.aro")
        assert cli_main(["asm", source_file, "-o", obj, "--embed"]) == 0
        assert cli_main(["run", obj]) == 0
        out = capsys.readouterr().out
        assert "block checks" in out
        assert "r2 =0x0000000a" in out  # 4+3+2+1

    def test_run_source_fast(self, source_file, capsys):
        assert cli_main(["run", source_file]) == 0
        assert "CPI" in capsys.readouterr().out

    def test_run_source_checked(self, source_file, capsys):
        assert cli_main(["run", source_file, "--checked"]) == 0
        assert "block checks" in capsys.readouterr().out

    def test_blocks(self, source_file, capsys):
        assert cli_main(["blocks", source_file]) == 0
        out = capsys.readouterr().out
        assert "entry DCS" in out
        assert "cond" in out

    def test_inject_detected(self, source_file, capsys):
        code = cli_main(["inject", source_file, "--signal", "ex.alu.result",
                         "--bit", "7", "--at", "2"])
        assert code == 0
        assert "DETECTED by computation" in capsys.readouterr().out

    def test_inject_masked(self, source_file, capsys):
        code = cli_main(["inject", source_file, "--signal", "ex.mul.product",
                         "--bit", "60"])
        assert code == 0
        assert "no detection" in capsys.readouterr().out

    def test_trace(self, source_file, capsys):
        assert cli_main(["trace", source_file, "--limit", "8"]) == 0
        out = capsys.readouterr().out
        assert "hot blocks" in out
        assert "cond" in out

    def test_run_detects_corrupted_object(self, source_file, tmp_path, capsys):
        obj = str(tmp_path / "out.aro")
        cli_main(["asm", source_file, "-o", obj, "--embed"])
        payload = json.loads(open(obj).read())
        # Corrupt a consumed payload bit: the entry block's successor DCS
        # packs into the first spare bits of the block, which live in the
        # movhi at word 2 (spare bits [20:16]).  Trailing spare bits are
        # don't-care, as in hardware - only consumed payload is verified.
        word = int(payload["words"][2], 16) ^ (1 << 19)
        payload["words"][2] = "0x%08x" % word
        open(obj, "w").write(json.dumps(payload))
        from repro.io.objfile import ObjFileError
        with pytest.raises(ObjFileError):
            cli_main(["run", obj])


class TestCliExtras:
    def test_characterize_subset(self, capsys):
        assert cli_main(["characterize", "rasta"]) == 0
        out = capsys.readouterr().out
        assert "| rasta |" in out

    def test_fuzz_generates_and_runs(self, tmp_path, capsys):
        path = str(tmp_path / "fuzz.s")
        assert cli_main(["fuzz", "--seed", "5", "-o", path, "--run"]) == 0
        out = capsys.readouterr().out
        assert "checked run" in out
        assert "start" in open(path).read()
