"""Run a miniature Table-1 fault-injection campaign (~30 seconds).

::

    python examples/fault_injection_campaign.py [experiments]

Reproduces the paper's methodology end to end: weighted sampling of gate
-equivalent injection points, a masking run with checkers disabled
(transients held active until first architectural impact), a detection
run with all checkers armed, and the 2x2 classification of Table 1 plus
the Sec. 4.1.1 per-checker attribution.
"""

import sys

from repro.eval import paper
from repro.eval.detectors import attribution
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT


def main(experiments=300):
    campaign = Campaign(seed=42)
    print("stress-test golden run: %d instructions" % campaign.golden_length)
    campaign.false_positive_check(runs=1)
    print("no-fault sanity run: no checker fired\n")

    for duration in (TRANSIENT, PERMANENT):
        summary = campaign.run(experiments=experiments, duration=duration)
        fractions = summary.fractions()
        reference = paper.TABLE1[duration]
        print("%s errors (%d experiments):" % (duration, experiments))
        for key in ("unmasked_undetected", "unmasked_detected",
                    "masked_undetected", "masked_detected"):
            print("  %-22s %6.2f%%   (paper %5.2f%%)" % (
                key, 100 * fractions[key], 100 * reference[key]))
        print("  unmasked coverage      %6.2f%%   (paper %5.2f%%)" % (
            100 * summary.unmasked_coverage,
            100 * paper.UNMASKED_COVERAGE[duration]))
        shares = attribution(summary)
        print("  detections by checker:",
              ", ".join("%s %.0f%%" % (name, 100 * share)
                        for name, share in sorted(shares.items(),
                                                  key=lambda kv: -kv[1])))
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
