"""Measure Argus-1's overheads on your own kernel (Figures 5-7 style).

::

    python examples/custom_workload.py

Defines a new workload (a string-search kernel, something the built-in
suite doesn't have), runs base-vs-embedded on both cache configurations,
and prints its dynamic/static/runtime overheads - exactly what
``repro.workloads.runner`` does for the MediaBench-like suite.
"""

from repro.workloads.base import Workload
from repro.workloads.gen import byte_directive
from repro.workloads.runner import measure_workload

import random

rng = random.Random(0xB0)
HAYSTACK = [rng.randrange(ord("a"), ord("z") + 1) for _ in range(2048)]
NEEDLE = HAYSTACK[700:708]  # guaranteed hit, plus many near misses

SOURCE = """
start:  la   r2, haystack
        la   r3, needle
        li   r4, %(haystack_len)d
        li   r5, %(needle_len)d
        li   r16, 0              # match count
        li   r17, 0              # checksum
        sub  r4, r4, r5          # last feasible start offset

outer:  li   r6, 0               # needle index
        mov  r7, r2              # haystack cursor
        mov  r8, r3              # needle cursor
inner:  lbz  r10, 0(r7)
        lbz  r11, 0(r8)
        sfne r10, r11
        bf   no_match
        nop
        addi r7, r7, 1
        addi r8, r8, 1
        addi r6, r6, 1
        sfltu r6, r5
        bf   inner
        nop
        addi r16, r16, 1         # full needle matched
        j    advance
        nop

no_match:
        slli r12, r17, 5         # fold the mismatch position
        srli r17, r17, 27
        or   r17, r17, r12
        xor  r17, r17, r10
advance:
        addi r2, r2, 1
        addi r4, r4, -1
        sfgtsi r4, 0
        bf   outer
        nop

        la   r12, result
        slli r13, r16, 16        # matches in the high half...
        exthz r14, r17           # ...mismatch checksum in the low half
        or   r13, r13, r14
        sw   r13, 0(r12)
        sw   r16, 4(r12)
        halt

        .data
haystack:
%(haystack)s
needle:
%(needle)s
result: .word 0, 0
"""

SEARCH = Workload(
    name="strsearch",
    source=SOURCE % {
        "haystack_len": len(HAYSTACK),
        "needle_len": len(NEEDLE),
        "haystack": byte_directive(HAYSTACK),
        "needle": byte_directive(NEEDLE),
    },
    description="naive string search over synthetic text",
)


def main():
    print("%-10s %10s %8s %8s %8s" % ("workload", "instrs", "dyn%", "static%", "run%"))
    for ways in (1, 2):
        m = measure_workload(SEARCH, ways=ways)
        print("%-10s %10d %8.2f %8.2f %+8.2f   (%d-way I$, %d matches, "
              "checksum 0x%04x)" % (
                  SEARCH.name, m.base_instructions, 100 * m.dynamic_overhead,
                  100 * m.static_overhead, 100 * m.runtime_overhead, ways,
                  m.checksum >> 16, m.checksum & 0xFFFF))


if __name__ == "__main__":
    main()
