"""Quickstart: protect a program with Argus-1 and watch it catch a fault.

Runs in a few seconds::

    python examples/quickstart.py

Steps:
1. write a small assembly program (dot-product with a scaling call);
2. run the Argus signature toolchain (``embed_program``) over it;
3. execute it on the fully-checked core - no checker fires;
4. inject a single bit flip into the ALU result bus and run again - the
   computation sub-checker reports it within a cycle.
"""

from repro.argus.errors import ArgusError
from repro.cpu import CheckedCore, FastCore
from repro.faults.injector import SignalInjector
from repro.faults.model import FaultSpec
from repro.toolchain import embed_program

SOURCE = """
start:  li   r1, 8               # vector length
        la   r2, xs
        la   r3, ys
        li   r4, 0               # accumulator

loop:   lwz  r5, 0(r2)
        lwz  r6, 0(r3)
        mul  r7, r5, r6
        add  r4, r4, r7
        addi r2, r2, 4
        addi r3, r3, 4
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop

        jal  scale               # result = dot >> 2, via a call
        nop
        la   r8, result
        sw   r4, 0(r8)
        halt

scale:  srai r4, r4, 2
        ret
        nop

        .data
xs:     .word 1, 2, 3, 4, 5, 6, 7, 8
ys:     .word 8, 7, 6, 5, 4, 3, 2, 1
result: .word 0
"""


def main():
    # -- 1+2: assemble and embed the Dataflow & Control Signatures -------
    embedded = embed_program(SOURCE)
    print("embedded %d basic blocks, %d Signature instruction(s) added, "
          "static overhead %.1f%%" % (
              len(embedded.blocks), embedded.sigs_added,
              100 * embedded.static_overhead))

    # -- 3: fault-free checked run ----------------------------------------
    core = CheckedCore(embedded, detect=True)
    outcome = core.run()
    result = core.load_word(embedded.program.addr_of("result"))
    print("checked run: %d instructions, %d block checks, result = %d"
          % (outcome.instructions, outcome.blocks_checked, result))

    # Cross-check against the plain (unchecked) core.
    fast = FastCore(embedded.program)
    fast.run()
    assert fast.load_word(embedded.program.addr_of("result")) == result

    # -- 4: one bit flip on the ALU result bus ----------------------------
    injector = SignalInjector(FaultSpec(target="ex.alu.result", mask=1 << 13))
    faulty = CheckedCore(embedded, injector=injector, detect=True)
    injector.enable()
    try:
        faulty.run()
        raise SystemExit("BUG: the fault was not detected")
    except ArgusError as exc:
        print("injected fault detected: %s" % exc.event)


if __name__ == "__main__":
    main()
