"""A guided tour of the Argus-1 signature toolchain (paper Fig. 2).

::

    python examples/signature_embedding_tour.py

Takes the paper's Figure 2 control-flow shape (a diamond: conditional
branch, two paths, a join) and shows each embedding phase: block
segmentation, Signature-NOP insertion, per-block DCS computation, and
where each successor DCS lands in the spare instruction bits.
"""

from repro.argus.payload import PayloadCollector, payload_capacity
from repro.asm import assemble, disassemble_program, parse
from repro.cpu import CheckedCore
from repro.isa.decode import decode
from repro.toolchain import embed_program

# Figure 2 of the paper, transcribed to our ISA (BB1 conditional, BB2 the
# fall-through with a jump, BB3 the taken path falling into BB4).
SOURCE = """
start:  add  r1, r2, r3          # BB1
        sub  r4, r1, r2
        sfeq r4, r2
        bf   bb3
        nop
        lwz  r6, 0(r4)           # BB2 (fall-through path)
        mul  r7, r6, r6
        j    bb4
        nop
bb3:    or   r8, r6, r9          # BB3 (taken path, falls through)
bb4:    and  r10, r8, r6         # BB4 (join)
        halt
"""


def main():
    base = assemble(parse(SOURCE))
    embedded = embed_program(SOURCE)
    program = embedded.program

    print("=== phase 1: Signature insertion "
          "(%d terminator, %d capacity) ===" % (
              embedded.terminator_sigs, embedded.capacity_sigs))
    print("base %d words -> embedded %d words\n" % (
        len(base.words), len(program.words)))
    for address, word, text in disassemble_program(program):
        if word is None:
            print(text)
        else:
            print("  0x%04x  %08x  %s" % (address, word, text))

    print("\n=== phase 2: per-block DCS (5-bit, CRC5 SHS fold) ===")
    for block in embedded.blocks.values():
        capacity = sum(payload_capacity(decode(program.word_at(a)).op)
                       for a in range(block.start, block.end, 4))
        print("  block 0x%04x..0x%04x  kind=%-12s DCS=0x%02x  "
              "spare capacity=%d bits" % (
                  block.start, block.end - 4, block.kind, block.dcs, capacity))

    print("\n=== phase 3: embedded successor DCSs ===")
    for block in embedded.blocks.values():
        if not block.fields:
            continue
        fields = ", ".join("%s=0x%02x" % kv for kv in block.fields.items())
        print("  block 0x%04x embeds {%s}" % (block.start, fields))
        collector = PayloadCollector()
        for address in range(block.start, block.end, 4):
            word = program.word_at(address)
            collector.add(decode(word), word)
        assert collector.extract(block.kind) == block.fields

    print("\nentry DCS (program header): 0x%02x" % embedded.entry_dcs)

    core = CheckedCore(embedded, detect=True)
    outcome = core.run()
    print("checked execution: %d instructions, %d block comparisons, "
          "no errors" % (outcome.instructions, outcome.blocks_checked))


if __name__ == "__main__":
    main()
