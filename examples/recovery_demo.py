"""Detect-and-recover: the full Argus + SafetyNet story (paper Sec. 1).

::

    python examples/recovery_demo.py

Argus detects; a checkpoint/rollback mechanism recovers.  This demo runs
a checksum kernel under three conditions:

1. fault-free - zero rollbacks, baseline result;
2. a transient burst on the ALU result bus - several detections, each
   rolled back; the final result is *identical* to the fault-free run;
3. a permanent ALU fault - recovery keeps retrying the same checkpoint
   and finally diagnoses the error as permanent (the actionable signal
   the paper wants for hard faults).
"""

from repro.argus.recovery import RecoveringCore, UnrecoverableError
from repro.cpu import CheckedCore
from repro.faults.injector import SignalInjector
from repro.faults.model import FaultSpec
from repro.toolchain import embed_program

SOURCE = """
start:  li   r1, 64
        li   r2, 0
        la   r6, buf
loop:   mul  r3, r1, r1
        add  r2, r2, r3
        sw   r2, 0(r6)
        addi r1, r1, -1
        sfgtsi r1, 0
        bf   loop
        nop
        sw   r2, 4(r6)
        halt
        .data
buf:    .word 0, 0
"""

EXPECTED = sum(n * n for n in range(1, 65))


def run_fault_free():
    embedded = embed_program(SOURCE)
    recovering = RecoveringCore(CheckedCore(embedded, detect=True),
                                checkpoint_interval=32)
    result = recovering.run()
    value = recovering.core.load_word(embedded.program.addr_of("buf") + 4)
    print("fault-free:  result=%d, %d rollbacks, %d checkpoints"
          % (value, result.rollbacks, result.checkpoints_taken))
    assert value == EXPECTED


def run_transient_burst():
    embedded = embed_program(SOURCE)
    injector = SignalInjector(FaultSpec("ex.alu.result", 1 << 9))
    core = CheckedCore(embedded, injector=injector, detect=True)
    recovering = RecoveringCore(core, checkpoint_interval=32, max_retries=10)

    # A particle-strike burst: the fault is live for a window of
    # instructions, then gone.  Recovery replays through it.
    burst = range(100, 140)
    steps = 0
    rollbacks = 0
    while not core.halted:
        injector.enabled = steps in burst
        try:
            core.step()
        except Exception:
            rollbacks += 1
            recovering._checkpoint.restore(core)
            continue
        recovering._maybe_checkpoint()
        steps += 1
    value = core.load_word(embedded.program.addr_of("buf") + 4)
    print("transient:   result=%d, %d rollbacks (burst survived)"
          % (value, rollbacks))
    assert value == EXPECTED
    assert rollbacks >= 1


def run_permanent():
    embedded = embed_program(SOURCE)
    injector = SignalInjector(FaultSpec("ex.alu.result", 1 << 9))
    core = CheckedCore(embedded, injector=injector, detect=True)
    injector.enable()
    recovering = RecoveringCore(core, checkpoint_interval=32, max_retries=3)
    try:
        recovering.run()
        print("permanent:   BUG - should not complete")
    except UnrecoverableError as exc:
        print("permanent:   diagnosed after %d rollbacks: %s"
              % (exc.attempts, exc.event.detail))


if __name__ == "__main__":
    run_fault_free()
    run_transient_burst()
    run_permanent()
