"""Sec. 5: area/coverage comparison against the related schemes.

Paper's argument, encoded as assertions: DMR and LEON-FT-style TMR cost
about a full core; a DIVA checker approaches core size on single-issue
in-order cores; BulletProof is cheap but misses transients; RMT needs
SMT and ~30% throughput; software redundancy doubles runtime.  Argus-1
is the cheapest scheme covering both transients and permanents.
"""

from repro.area.baselines import format_comparison, related_work_comparison


def test_related_work_comparison(benchmark):
    rows = benchmark(related_work_comparison)
    print("\n" + format_comparison(rows))
    by_name = {row.name: row for row in rows}
    for row in rows:
        benchmark.extra_info[row.name] = "%.1f%%" % (100 * row.core_overhead)

    assert by_name["DMR"].core_overhead > 1.0
    assert 0.75 < by_name["TMR-FF (LEON-FT)"].core_overhead < 1.3
    assert by_name["DIVA checker"].core_overhead > 0.75
    assert not by_name["BulletProof"].detects_transients
    assert by_name["RMT"].performance_overhead >= 0.30
    assert by_name["SWIFT (software)"].performance_overhead >= 0.5

    full_coverage = [row for row in rows
                     if row.detects_transients and row.detects_permanents]
    cheapest = min(full_coverage, key=lambda row: row.core_overhead)
    assert cheapest.name == "Argus-1"
    assert cheapest.core_overhead < 0.20
