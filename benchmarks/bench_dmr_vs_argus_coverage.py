"""Sec. 5 head-to-head: Argus-1 vs lockstep DMR on the same faults.

The paper argues DMR buys its (near-perfect) coverage of unmasked errors
at ~100% extra area, while Argus-1 gets within a couple of points of it
for ~17%.  This benchmark replays the *same* sampled fault list through
both schemes and reports coverage-per-area: DMR detects at least what
Argus does on unmasked errors, Argus stays within a few points, and the
area ratio is ~6x.
"""

import random

from repro.area.baselines import related_work_comparison
from repro.cpu.dmr import LockstepCore
from repro.faults.campaign import Campaign
from repro.faults.injector import SignalInjector
from repro.faults.model import PERMANENT
from repro.faults.points import sample_points

EXPERIMENTS = 150


def _dmr_detects(embedded, spec, inject_at, limit):
    injector = None if spec.is_state else SignalInjector(spec)
    core = LockstepCore(embedded, injector=injector)
    from repro.faults.model import StateFaultApplier
    applier = StateFaultApplier(spec, PERMANENT) if spec.is_state else None
    try:
        for step in range(limit):
            if step == inject_at:
                if applier is not None:
                    applier.apply(core.primary)
                else:
                    injector.enable()
            if core.primary.halted and core.shadow.halted:
                return False
            core.step()
            if applier is not None and step >= inject_at:
                applier.reassert(core.primary)
    except Exception:  # LockstepMismatch or a replica crash = detection
        return True
    return False


def _compare(experiments=EXPERIMENTS, seed=31):
    campaign = Campaign(seed=seed)
    rng = random.Random(seed)
    golden_len = campaign.golden_length
    limit = int(golden_len * 1.25) + 64
    sampled = sample_points(campaign.points, experiments, rng)
    argus_detected = dmr_detected = unmasked = 0
    for point in sampled:
        inject_at = rng.randrange(0, int(golden_len * 0.85))
        result = campaign.run_experiment(point.spec, PERMANENT, inject_at)
        if result.masked:
            continue
        unmasked += 1
        if result.detected:
            argus_detected += 1
        if _dmr_detects(campaign.embedded, point.spec, inject_at, limit):
            dmr_detected += 1
    return unmasked, argus_detected, dmr_detected


def test_dmr_vs_argus_coverage(benchmark):
    unmasked, argus, dmr = benchmark.pedantic(_compare, rounds=1, iterations=1)
    areas = {row.name: row.core_overhead for row in related_work_comparison()}
    argus_rate = argus / unmasked
    dmr_rate = dmr / unmasked
    print("\n  unmasked errors: %d" % unmasked)
    print("  Argus-1 coverage: %5.1f%% at %5.1f%% area overhead"
          % (100 * argus_rate, 100 * areas["Argus-1"]))
    print("  DMR     coverage: %5.1f%% at %5.1f%% area overhead"
          % (100 * dmr_rate, 100 * areas["DMR"]))
    benchmark.extra_info["argus_coverage"] = round(argus_rate, 4)
    benchmark.extra_info["dmr_coverage"] = round(dmr_rate, 4)
    benchmark.extra_info["area_ratio"] = round(areas["DMR"] / areas["Argus-1"], 2)

    assert unmasked > 30
    assert dmr_rate >= 0.95  # DMR is the coverage gold standard
    assert argus_rate > dmr_rate - 0.10  # Argus within a few points...
    assert areas["DMR"] / areas["Argus-1"] > 5  # ...at ~6x less area
