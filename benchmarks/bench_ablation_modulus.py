"""Ablation (Sec. 3.3.2): Mersenne modulus size of the mul/div checker.

"Modulo checkers have a small probability of aliasing ... [which] can be
made arbitrarily small by increasing M, at the cost of a larger
multiplier in the sub-checker."  This ablation sweeps Mersenne moduli
and measures the empirical escape rate of random multiplier corruptions,
which must fall like ~1/M, against the residue width as the cost proxy.
"""

import random

from repro.argus.checkers import ModuloChecker
from repro.isa.opcodes import Op
from repro.isa.semantics import mul64

TRIALS = 4000
MODULI = (3, 7, 15, 31, 63, 127)


def _escape_rate(modulus, trials=TRIALS, seed=99):
    rng = random.Random(seed)
    checker = ModuloChecker(modulus=modulus)
    escapes = 0
    for _ in range(trials):
        a = rng.getrandbits(32)
        b = rng.getrandbits(32)
        product = mul64(Op.MULU, a, b)
        # A gate fault inside the multiplier array perturbs the product by
        # an arbitrary amount (carry chains smear single-node upsets).
        delta = rng.randrange(1, 1 << 20)
        corrupted = (product + delta) & 0xFFFFFFFFFFFFFFFF
        if checker.check_mul(Op.MULU, a, b, corrupted):
            escapes += 1
    return escapes / trials


def test_modulus_ablation(benchmark):
    rates = benchmark.pedantic(
        lambda: {m: _escape_rate(m) for m in MODULI}, rounds=1, iterations=1)
    print("\n  %8s %12s %14s" % ("modulus", "escape rate", "checker bits"))
    for modulus, rate in rates.items():
        print("  %8d %11.2f%% %14d" % (modulus, 100 * rate,
                                       modulus.bit_length()))
        benchmark.extra_info["M=%d" % modulus] = round(rate, 5)

    # Aliasing shrinks like ~1/M: each modulus should sit near its 1/M
    # line, and the sweep must be monotone down to sampling noise.
    assert rates[3] > rates[31] > rates[127]
    for modulus, rate in rates.items():
        assert abs(rate - 1.0 / modulus) < 3.0 / modulus ** 0.5 / TRIALS ** 0.5 + 0.01
    # The paper's M=31 pick: ~3% residual aliasing on the multiplier.
    assert 0.01 < rates[31] < 0.06
