"""Extension of Sec. 4.1.1: the per-signal coverage matrix.

The paper's aggregate attribution implies a structure: each fault class
is caught by the checker responsible for its invariant.  This benchmark
probes every non-inert signal class with deterministic injections and
verifies the measured dominant checker against the design's assignment
(docs/SIGNALS.md) - e.g. ALU results by the computation sub-checkers,
operand buses by parity, PC/branch faults by the DCS comparison, stuck
stalls by the watchdog, with checker-internal faults never silent.
"""

from repro.eval.coverage_matrix import (
    build_coverage_matrix,
    format_matrix,
    verify_matrix,
)


def test_coverage_matrix(benchmark):
    matrix = benchmark.pedantic(
        build_coverage_matrix, kwargs={"probes_per_signal": 4},
        rounds=1, iterations=1)
    print("\n" + format_matrix(matrix))
    mismatches = verify_matrix(matrix)
    print("\n  structural mismatches: %d" % len(mismatches))
    for signal, expected, measured in mismatches:
        print("    %s: expected %s, measured %s" % (signal, expected, measured))
    benchmark.extra_info["signals_probed"] = len(matrix)
    benchmark.extra_info["mismatches"] = len(mismatches)

    assert not mismatches
    # Checker-internal faults are never silent corruptions: every chk.*
    # probe was either masked-with-detection or detected.
    for signal, coverage in matrix.items():
        if signal.startswith(("chk.", "cfc.", "state.shs", "ex.shs")):
            assert "undetected" not in coverage.outcomes, signal
