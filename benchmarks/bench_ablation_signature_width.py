"""Ablation (Secs. 3.2.2, 4.1): signature width vs aliasing probability.

Argus-1 uses 5-bit signatures - "the smallest that allows a unique
initial value for each of the OR1200's 32 registers" - accepting ~1/32
DCS aliasing.  This ablation rebuilds the permute+XOR-tree fold at other
widths and measures the empirical aliasing rate of random SHS-state
corruptions, confirming the 2^-k scaling that lets "the chance of
aliasing ... be arbitrarily reduced by increasing signature sizes".
"""

import random

from repro.argus.shs import NUM_LOCATIONS

WIDTHS = (2, 3, 4, 5, 6, 8)
TRIALS = 6000


def _make_fold(width, rng):
    total_bits = NUM_LOCATIONS * width
    order = list(range(total_bits))
    rng.shuffle(order)
    mask = (1 << width) - 1

    def fold(values):
        flat = 0
        for value in values:
            flat = (flat << width) | (value & mask)
        permuted = 0
        for i, src in enumerate(order):
            if (flat >> src) & 1:
                permuted |= 1 << i
        out = 0
        while permuted:
            out ^= permuted & mask
            permuted >>= width
        return out

    return fold


def _alias_rate(width, trials=TRIALS, seed=5):
    rng = random.Random(seed)
    fold = _make_fold(width, rng)
    aliases = 0
    for _ in range(trials):
        state = [rng.getrandbits(width) for _ in range(NUM_LOCATIONS)]
        reference = fold(state)
        corrupted = list(state)
        # Corrupt a random subset of locations (a multi-signature error,
        # the hard case for the fold).
        for _ in range(rng.randint(1, 4)):
            corrupted[rng.randrange(NUM_LOCATIONS)] = rng.getrandbits(width)
        if corrupted != state and fold(corrupted) == reference:
            aliases += 1
    return aliases / trials


def test_signature_width_ablation(benchmark):
    rates = benchmark.pedantic(
        lambda: {w: _alias_rate(w) for w in WIDTHS}, rounds=1, iterations=1)
    print("\n  %8s %12s %14s" % ("width", "alias rate", "ideal 2^-k"))
    for width, rate in rates.items():
        print("  %8d %11.2f%% %13.2f%%" % (width, 100 * rate,
                                           100 * 2 ** -width))
        benchmark.extra_info["k=%d" % width] = round(rate, 5)

    # Aliasing shrinks steadily with width.  Note the measured rates sit
    # somewhat above the ideal 2^-k: the permute+XOR-tree fold is linear,
    # so low-weight difference patterns (e.g. two flipped flat bits) can
    # cancel with probability ~1/k - an inherent property of the paper's
    # fold, also visible as the DCS-aliasing silent corruptions of
    # Table 1.
    assert rates[2] > rates[4] > rates[6] > rates[8]
    assert abs(rates[5] - 1 / 32) < 0.035
    assert rates[8] < rates[5] / 3
