"""Figure 6: runtime overhead with the direct-mapped 8 KB I-cache.

Paper: 3.9% average; the per-benchmark spread is large and includes
*speedups*, because inserting Signature instructions re-aligns basic
blocks and randomly reduces or increases direct-mapped conflict misses.
Shape: average in the low single digits, at least one benchmark with a
negative overhead, and clearly more variance than the 2-way run.
"""

import statistics

from repro.eval import paper
from repro.workloads import ALL_WORKLOADS
from repro.workloads.runner import measure_suite


def test_fig6_runtime_overhead_1way(benchmark):
    measurements = benchmark.pedantic(
        measure_suite, args=(ALL_WORKLOADS,), kwargs={"ways": 1},
        rounds=1, iterations=1)
    overheads = [m.runtime_overhead for m in measurements]
    print("\n  %-10s %9s" % ("bench", "runtime%"))
    for m in measurements:
        print("  %-10s %+9.2f" % (m.name, 100 * m.runtime_overhead))
        benchmark.extra_info[m.name] = round(m.runtime_overhead, 4)
    average = sum(overheads) / len(overheads)
    spread = statistics.stdev(overheads)
    benchmark.extra_info["average"] = round(average, 4)
    benchmark.extra_info["stdev"] = round(spread, 4)
    benchmark.extra_info["paper_average"] = paper.FIG6_AVG_RUNTIME_OVERHEAD_1WAY
    print("  average %+.2f%% (paper %.1f%%), stdev %.2f%%"
          % (100 * average, 100 * paper.FIG6_AVG_RUNTIME_OVERHEAD_1WAY,
             100 * spread))

    assert 0.005 < average < 0.07  # paper: 3.9%
    assert min(overheads) < 0.0  # "speed-ups on several benchmarks"
    assert max(overheads) > 0.06  # and big positive outliers
