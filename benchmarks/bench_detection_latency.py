"""Sec. 4.2: error-detection latency distribution per checker class.

Paper's qualitative ordering, which must hold in the measured medians:
computation errors are detected within ~a cycle of the faulty
computation; dataflow (DCS) errors by the end of the current/next basic
block; stored-memory parity errors only when the bad word is next
loaded (potentially much later - the EDC caveat).
"""

from repro.eval.latency import format_latency, latency_by_group
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT


def _run(experiments=300, seed=23):
    campaign = Campaign(seed=seed)
    summary = campaign.run(experiments=experiments, duration=PERMANENT)
    return latency_by_group(summary.results)


def test_detection_latency_distribution(benchmark):
    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_latency(stats))
    for group, entry in stats.items():
        benchmark.extra_info[group + "_median_cycles"] = entry.median("cycles")
        benchmark.extra_info[group + "_count"] = entry.count

    computation = stats["computation"]
    dcs = stats["dcs"]
    # Computation sub-checkers fire the moment the faulty unit is *used*;
    # latency here is measured from injection/activation, so a dormant
    # permanent fault adds the wait until its unit's next use.  The
    # block-granular bound still separates the classes: computation
    # detections never wait for a block boundary...
    assert computation.median("blocks") <= 1
    # ...while DCS detections are caught by the end of the current or the
    # next basic block (Sec. 4.2).
    assert dcs.median("blocks") <= 2
    # A large share of computation detections are truly immediate.
    immediate = sum(1 for cycles, *_ in computation.samples if cycles <= 2)
    assert immediate / computation.count > 0.30
