"""Table 2: area overhead of Argus-1 (core, caches, total chip).

Paper: core 6.58 -> 7.67 mm^2 (+16.6%), I-cache +0%, D-cache +4.9/5.1%,
total chip +10.9% (1-way) / +10.6% (2-way).  The baseline core area
calibrates the gate-area constant; every overhead percentage is a model
output and must land near the paper's.
"""

from repro.area.report import area_table, format_area_table
from repro.eval import paper


def test_table2_area(benchmark):
    rows = benchmark(area_table)
    print("\n" + format_area_table(rows))
    by_label = {row.label: row for row in rows}
    for label, (base, argus, overhead) in paper.TABLE2.items():
        row = by_label[label]
        benchmark.extra_info[label] = "%.2f->%.2f (%.1f%%)" % (
            row.baseline_mm2, row.argus_mm2, 100 * row.overhead)
        assert abs(row.overhead - overhead) < 0.03, label
    assert by_label["core"].overhead < 0.20  # "<17%"-class headline
    assert by_label["I-cache: 1-way"].overhead == 0.0
    assert by_label["total: 1-way"].overhead < by_label["core"].overhead
