"""Batched (structure-of-arrays) campaign speedup vs the scalar engine.

Runs the same seed-pinned transient campaign three ways - scalar cold
(no checkpoints, every experiment replays from instruction 0), batched
with the pure-Python column backend, and batched with the numpy column
backend (skipped when numpy is not installed) - asserts every run is
*bit-identical* per experiment (quadrant, checker attribution, detail,
latencies), and records the throughputs as JSON.

There is deliberately no timing gate in the pytest entry point: CI
machines are too noisy to assert wall-clock ratios, so CI only enforces
the classification match and uploads the record as an artifact.  The
committed ``BENCH_batched_core.json`` (regenerate with
``python benchmarks/bench_batched_core.py``) documents the speedup on a
quiet machine; the acceptance bar is >=5x over the cold scalar engine
at the default 500-experiment size.

Size via ``ARGUS_BATCHED_EXPERIMENTS`` (default 500), output path via
``ARGUS_BATCHED_RECORD``, speedup floor via
``ARGUS_BATCHED_MIN_SPEEDUP`` (CI sets 1.0: record, don't gate).
"""

import json
import os
import time

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT

EXPERIMENTS = int(os.environ.get("ARGUS_BATCHED_EXPERIMENTS", "500"))
MIN_SPEEDUP = float(os.environ.get("ARGUS_BATCHED_MIN_SPEEDUP", "5.0"))
SEED = 2007
BATCH_SIZE = 64
RECORD_PATH = os.environ.get(
    "ARGUS_BATCHED_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_batched_core.json"))


def _result_key(result):
    return (result.quadrant, result.checker, result.detail, result.inject_at,
            result.activated_at, result.hung, result.latency_instructions,
            result.latency_cycles, result.latency_blocks)


def _numpy_available():
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def run_comparison(experiments=EXPERIMENTS, seed=SEED):
    """Run the campaign each way; returns {label: (seconds, summary,
    campaign)}.  Timing includes the golden run, so the batched numbers
    pay for building their own checkpoint set and site tables."""
    modes = [("scalar_cold", dict(use_checkpoints=False)),
             ("batched", dict(batched=True, batch_size=BATCH_SIZE))]
    if _numpy_available():
        modes.append(("batched_numpy", dict(batched=True,
                                            batch_size=BATCH_SIZE,
                                            backend="numpy")))
    out = {}
    for label, kwargs in modes:
        campaign = Campaign(seed=seed, **kwargs)
        start = time.perf_counter()
        summary = campaign.run(experiments=experiments, duration=TRANSIENT)
        out[label] = (time.perf_counter() - start, summary, campaign)
    return out


def check_classification(results):
    """Every mode must be indistinguishable from scalar, per experiment."""
    _, scalar, _ = results["scalar_cold"]
    for label, (_, summary, _) in results.items():
        assert summary.fractions() == scalar.fractions(), label
        assert summary.checker_counts == scalar.checker_counts, label
        assert ([_result_key(r) for r in summary.results]
                == [_result_key(r) for r in scalar.results]), label


def build_record(results):
    scalar_seconds, scalar, _ = results["scalar_cold"]
    record = {
        "experiments": EXPERIMENTS,
        "seed": SEED,
        "batch_size": BATCH_SIZE,
        "quadrants": scalar.fractions(),
        "rows": {},
    }
    for label, (seconds, _, campaign) in results.items():
        perf = campaign.perf_rates()
        record["rows"][label] = {
            "seconds": round(seconds, 3),
            "throughput": round(EXPERIMENTS / seconds, 2),
            "speedup_vs_scalar_cold": round(scalar_seconds / seconds, 3),
            "lanes": perf["lanes"],
            "synthesized_lanes": perf["synthesized_lanes"],
            "evicted_lanes": perf["evicted_lanes"],
            "eviction_rate": round(perf["eviction_rate"], 4),
        }
    return record


def test_batched_speedup(benchmark):
    results = {}

    def measure():
        results.update(run_comparison())
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    check_classification(results)

    record = build_record(results)
    for label, row in record["rows"].items():
        benchmark.extra_info["%s_throughput" % label] = row["throughput"]
        benchmark.extra_info["%s_speedup" % label] = (
            row["speedup_vs_scalar_cold"])
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    results = run_comparison()
    check_classification(results)
    record = build_record(results)
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    speedup = record["rows"]["batched"]["speedup_vs_scalar_cold"]
    assert speedup >= MIN_SPEEDUP, (
        "batched engine must reach %.1fx over the cold scalar engine at "
        "%d experiments on a quiet machine: %r"
        % (MIN_SPEEDUP, EXPERIMENTS, record))


if __name__ == "__main__":
    main()
