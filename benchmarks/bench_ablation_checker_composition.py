"""Ablation (Sec. 4.1.1): "a composition of all checkers is necessary".

Leave-one-out: run the same weighted fault campaign with each checker
category disabled and measure the coverage of unmasked errors.  The
paper's claim holds if every removal costs coverage; the measurement
also exposes the *defense-in-depth* structure - some computation-checker
detections are backstopped by parity or the DCS comparison downstream,
while parity's register/operand coverage has no substitute at all.
"""

from repro.cpu import CheckedCore
from repro.faults.campaign import Campaign
from repro.faults.injector import SignalInjector
from repro.faults.model import PERMANENT

EXPERIMENTS = 220


class _AblatedCampaign(Campaign):
    """A campaign whose detection runs use a checker subset."""

    def __init__(self, disabled, **kwargs):
        super().__init__(**kwargs)
        self.disabled = disabled

    def _new_core(self, spec, detect):
        injector = None if spec.is_state else SignalInjector(spec)
        checkers = [category for category in CheckedCore.CHECKER_CATEGORIES
                    if category != self.disabled]
        core = CheckedCore(self.embedded, injector=injector, detect=detect,
                           checkers=checkers)
        return core, injector


def _run_all():
    results = {"(all checkers)": Campaign(seed=9).run(
        experiments=EXPERIMENTS, duration=PERMANENT)}
    for disabled in ("computation", "parity", "dcs", "watchdog"):
        summary = _AblatedCampaign(disabled, seed=9).run(
            experiments=EXPERIMENTS, duration=PERMANENT)
        results["without " + disabled] = summary
    return results


def test_checker_composition_ablation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print("\n  %-22s %10s %8s" % ("configuration", "coverage", "silent"))
    full = results["(all checkers)"]
    for name, summary in results.items():
        fractions = summary.fractions()
        print("  %-22s %9.1f%% %7.1f%%" % (
            name, 100 * summary.unmasked_coverage,
            100 * fractions["unmasked_undetected"]))
        benchmark.extra_info[name] = round(summary.unmasked_coverage, 4)

    assert full.unmasked_coverage > 0.94
    # Removing ANY core checker costs coverage (the composition claim).
    for disabled in ("computation", "parity", "dcs"):
        assert (results["without " + disabled].unmasked_coverage
                < full.unmasked_coverage - 0.02), disabled
    # Parity has no substitute: its removal is by far the most damaging.
    drops = {name: full.unmasked_coverage - summary.unmasked_coverage
             for name, summary in results.items() if name != "(all checkers)"}
    assert max(drops, key=drops.get) == "without parity"
    assert drops["without parity"] > 0.25
