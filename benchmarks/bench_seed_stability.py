"""Robustness: Table 1's quadrants are stable across sampling seeds.

The paper's 5000-gate sample is one draw from the gate population; a
reproduction should show that the headline fractions are properties of
the design, not of a lucky seed.  Three independent campaigns must agree
on every quadrant within a few points and on coverage within ~2 points.
"""

import statistics

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT

SEEDS = (101, 202, 303)
EXPERIMENTS = 250


def _run_seeds():
    return {seed: Campaign(seed=seed).run(experiments=EXPERIMENTS,
                                          duration=TRANSIENT)
            for seed in SEEDS}


def test_seed_stability(benchmark):
    summaries = benchmark.pedantic(_run_seeds, rounds=1, iterations=1)
    quadrants = ("unmasked_undetected", "unmasked_detected",
                 "masked_undetected", "masked_detected")
    print("\n  %-8s %8s %8s %8s %8s %9s" % (
        "seed", "silent", "unm-det", "mask-und", "DME", "coverage"))
    for seed, summary in summaries.items():
        fractions = summary.fractions()
        print("  %-8d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%%" % (
            seed, *(100 * fractions[q] for q in quadrants),
            100 * summary.unmasked_coverage))
    for quadrant in quadrants:
        values = [summary.fractions()[quadrant]
                  for summary in summaries.values()]
        spread = max(values) - min(values)
        benchmark.extra_info[quadrant + "_spread"] = round(spread, 4)
        assert spread < 0.10, quadrant  # quadrants agree across seeds
    coverages = [s.unmasked_coverage for s in summaries.values()]
    assert statistics.pstdev(coverages) < 0.03
    assert min(coverages) > 0.92
