"""Sec. 4.1.1: which checker detects what, and unmasked coverage.

Paper: computation 45%, parity 36%, DCS 16%, watchdog 3% of detections;
Argus-1 detects 98.0% (transient) / 98.8% (permanent) of unmasked errors.
Shape: computation largest, watchdog smallest, all four present.
"""

from repro.eval import paper
from repro.eval.detectors import attribution
from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT


def _run(experiments=300, seed=17):
    campaign = Campaign(seed=seed)
    return campaign.run(experiments=experiments, duration=TRANSIENT)


def test_detection_attribution(benchmark):
    summary = benchmark.pedantic(_run, rounds=1, iterations=1)
    measured = attribution(summary)
    print("\n  %-12s %10s %10s" % ("checker", "measured", "paper"))
    for group in ("computation", "parity", "dcs", "watchdog"):
        value = measured.get(group, 0.0)
        benchmark.extra_info[group] = round(value, 3)
        print("  %-12s %9.1f%% %9.1f%%" % (
            group, 100 * value, 100 * paper.DETECTION_ATTRIBUTION[group]))
    benchmark.extra_info["unmasked_coverage"] = round(summary.unmasked_coverage, 4)

    ordered = sorted(measured, key=measured.get, reverse=True)
    assert ordered[0] == "computation"  # largest contributor, as in paper
    assert measured.get("watchdog", 0.0) < 0.10  # smallest contributor
    assert measured.get("parity", 0.0) > 0.15
    assert measured.get("dcs", 0.0) > 0.05
    assert summary.unmasked_coverage > 0.90
