"""Ablation (Sec. 3.2.2): unused-bit DCS embedding vs Signature-NOPs-only.

The paper "minimized the number of embedded Signature instructions by
storing DCS bits in unused instruction bits"; this ablation disables the
optimization (``force_nops=True``: every block carries an explicit
Signature instruction) and measures how much static and dynamic overhead
the optimization actually buys on the workload suite.
"""

from repro.cpu import FastCore
from repro.workloads import WORKLOADS

_BENCHES = ("adpcm_enc", "g721_enc", "gsm", "pegwit", "rasta")


def _overheads(force_nops):
    static = []
    dynamic = []
    for name in _BENCHES:
        workload = WORKLOADS[name]
        base = workload.build_base()
        embedded = workload.build_embedded(force_nops=force_nops)
        base_result = FastCore(base).run()
        embedded_result = FastCore(embedded.program).run()
        static.append(embedded.static_overhead)
        dynamic.append(
            (embedded_result.instructions - base_result.instructions)
            / base_result.instructions)
    count = len(_BENCHES)
    return sum(static) / count, sum(dynamic) / count


def test_unused_bit_embedding_ablation(benchmark):
    with_bits = _overheads(force_nops=False)
    nops_only = benchmark.pedantic(
        _overheads, args=(True,), rounds=1, iterations=1)
    print("\n  %-24s %10s %10s" % ("embedding", "static%", "dynamic%"))
    print("  %-24s %9.2f%% %9.2f%%" % ("unused bits (Argus-1)",
                                       100 * with_bits[0], 100 * with_bits[1]))
    print("  %-24s %9.2f%% %9.2f%%" % ("Signature NOPs only",
                                       100 * nops_only[0], 100 * nops_only[1]))
    benchmark.extra_info["static_with_bits"] = round(with_bits[0], 4)
    benchmark.extra_info["static_nops_only"] = round(nops_only[0], 4)
    benchmark.extra_info["dynamic_with_bits"] = round(with_bits[1], 4)
    benchmark.extra_info["dynamic_nops_only"] = round(nops_only[1], 4)

    # The optimization must buy a clear reduction on both axes; the
    # dynamic saving is the larger one (hot blocks are ALU-rich).
    assert nops_only[0] > with_bits[0] * 1.3
    assert nops_only[1] > with_bits[1] * 1.5
