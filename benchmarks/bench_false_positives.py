"""Sec. 4.1.2: zero false positives with no injected errors.

Paper: "To confirm that Argus-1 never incurs 'false positives' ... we
also performed experiments in which we injected no errors.  Argus-1
never reported an error in these experiments."  Every workload plus the
stress test runs fully checked; any checker firing fails the benchmark.
"""

from repro.eval.false_positives import run_false_positive_suite
from repro.workloads import WORKLOADS

_SUBSET = [WORKLOADS[name] for name in ("adpcm_enc", "g721_dec", "rasta", "mpeg2")]


def test_false_positive_suite(benchmark):
    results = benchmark.pedantic(
        run_false_positive_suite, kwargs={"workloads": _SUBSET},
        rounds=1, iterations=1)
    total_instructions = sum(instructions for __, instructions, __b in results)
    total_blocks = sum(blocks for *__, blocks in results)
    benchmark.extra_info["workloads"] = len(results)
    benchmark.extra_info["instructions_checked"] = total_instructions
    benchmark.extra_info["blocks_checked"] = total_blocks
    benchmark.extra_info["false_positives"] = 0
    print("\n  %d checked instructions, %d block comparisons, 0 false positives"
          % (total_instructions, total_blocks))
    assert total_blocks > 10_000
