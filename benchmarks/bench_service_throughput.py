"""Campaign-service throughput and cross-job cache-hit speedup.

Starts a real in-process service (content-addressed store + priority
scheduler + asyncio HTTP server) and measures, over the socket:

1. **Job throughput** - N disjoint small campaigns submitted
   back-to-back; jobs/s from first submit to last completion.
2. **Cache-hit speedup** - the 50%-overlapping resubmission: a fresh
   2E-experiment campaign runs cold, then an E-experiment job with a
   different seed primes the store and the 2E-campaign over *that* seed
   runs with exactly half its plan served from the store.  The
   deterministic planner draws a campaign's first E experiments
   identically regardless of total size, which is what makes the
   overlap exact.  A final identical resubmission measures the
   full-cache (100% hit) floor.

The bench also *asserts* that the service's quadrant summary and
checker attribution are bit-identical to a direct ``Campaign.run`` of
the same spec: the service may only change how fast an answer arrives,
never the answer.

There is deliberately no timing gate (CI machines are too noisy for
wall-clock assertions): CI runs a small version, enforces the
equalities, and uploads the record; the committed
``BENCH_service_throughput.json`` (regenerate with
``python benchmarks/bench_service_throughput.py``) documents the
numbers on a quiet machine.

Size via ``ARGUS_SERVICE_EXPERIMENTS`` (per-job experiments, default
150) and ``ARGUS_SERVICE_JOBS`` (throughput-phase jobs, default 4);
output path via ``ARGUS_SERVICE_RECORD``.
"""

import json
import os
import shutil
import tempfile
import time

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT
from repro.service import (JobScheduler, ResultStore, ServiceClient,
                           ServiceServer)

EXPERIMENTS = int(os.environ.get("ARGUS_SERVICE_EXPERIMENTS", "150"))
JOBS = int(os.environ.get("ARGUS_SERVICE_JOBS", "4"))
SEED = 2007
RECORD_PATH = os.environ.get(
    "ARGUS_SERVICE_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_service_throughput.json"))


class Service:
    """One in-process server over a temp data dir, wired for teardown."""

    def __init__(self, job_runners=2):
        self.data_dir = tempfile.mkdtemp(prefix="argus-bench-service-")
        self.store = ResultStore(os.path.join(self.data_dir, "store.sqlite"))
        self.scheduler = JobScheduler(self.store, self.data_dir,
                                      workers=1, job_runners=job_runners)
        self.scheduler.start()
        self.server = ServiceServer(self.scheduler, port=0)
        host, port = self.server.start_in_thread()
        self.client = ServiceClient("http://%s:%d" % (host, port))

    def close(self):
        self.server.stop()
        self.scheduler.shutdown()
        self.store.close()
        shutil.rmtree(self.data_dir, ignore_errors=True)


def _wait_done(client, job, timeout=900.0):
    final = client.wait(job["id"], timeout=timeout, poll=0.05)
    assert final["state"] == "done", (final["state"], final.get("error"))
    return final


def run_measurement():
    """Returns (record, warm_job) - asserts all cache-count equalities."""
    service = Service()
    try:
        client = service.client

        # Phase 1: N disjoint campaigns, queued at once, drained by the
        # runner pool.  Distinct seeds means zero cross-job cache hits -
        # this is the no-dedup throughput floor.
        spec = {"experiments": EXPERIMENTS, "duration": "transient"}
        start = time.perf_counter()
        queued = [client.submit(dict(spec, seed=SEED + 1 + index))
                  for index in range(JOBS)]
        finals = [_wait_done(client, job) for job in queued]
        throughput_seconds = time.perf_counter() - start
        assert all(final["cached"] == 0 for final in finals)

        # Phase 2: cold 2E-campaign (fresh seed, nothing cacheable).
        start = time.perf_counter()
        cold = _wait_done(client, client.submit(
            dict(spec, seed=SEED + 100, experiments=2 * EXPERIMENTS)))
        cold_seconds = time.perf_counter() - start
        assert cold["cached"] == 0 and cold["executed"] == 2 * EXPERIMENTS

        # Phase 3: prime the store with the first half of another seed's
        # plan, then run its 2E-campaign - a 50%-overlapping resubmission.
        _wait_done(client, client.submit(dict(spec, seed=SEED + 200)))
        start = time.perf_counter()
        warm = _wait_done(client, client.submit(
            dict(spec, seed=SEED + 200, experiments=2 * EXPERIMENTS)))
        warm_seconds = time.perf_counter() - start
        assert warm["cached"] == EXPERIMENTS, warm
        assert warm["executed"] == EXPERIMENTS, warm

        # Phase 4: identical resubmission - the 100%-hit floor.
        start = time.perf_counter()
        hot = _wait_done(client, client.submit(
            dict(spec, seed=SEED + 200, experiments=2 * EXPERIMENTS)))
        hot_seconds = time.perf_counter() - start
        assert hot["cached"] == 2 * EXPERIMENTS and hot["executed"] == 0, hot
        assert hot["summaries"] == warm["summaries"]

        metrics = client.metrics()
        record = {
            "experiments_per_job": EXPERIMENTS,
            "throughput_jobs": JOBS,
            "throughput_seconds": round(throughput_seconds, 3),
            "jobs_per_second": round(JOBS / throughput_seconds, 3),
            "experiments_per_second":
                round(JOBS * EXPERIMENTS / throughput_seconds, 2),
            "overlap_fraction": 0.5,
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "hot_seconds": round(hot_seconds, 3),
            "cache_hit_speedup": round(cold_seconds / warm_seconds, 3),
            "full_cache_speedup": round(cold_seconds / hot_seconds, 3),
            "service_cache_hit_rate": round(metrics["cache_hit_rate"], 4),
            "seed": SEED,
            "quadrants": warm["summaries"]["transient"]["quadrants"],
        }
        return record, warm
    finally:
        service.close()


def check_against_direct(warm):
    """The service answer must equal a direct in-process Campaign.run."""
    spec = warm["spec"]
    campaign = Campaign(seed=spec["seed"], run_slack=spec["run_slack"],
                        include_double_bits=spec["include_double_bits"],
                        use_checkpoints=spec["use_checkpoints"])
    direct = campaign.run(experiments=spec["experiments"],
                          duration=TRANSIENT, workers=1)
    summary = warm["summaries"]["transient"]
    assert summary["quadrants"] == {
        "unmasked_undetected": direct.unmasked_undetected,
        "unmasked_detected": direct.unmasked_detected,
        "masked_undetected": direct.masked_undetected,
        "masked_detected": direct.masked_detected,
    }
    assert summary["checker_counts"] == dict(direct.checker_counts)
    assert summary["fractions"] == direct.fractions()


def test_service_throughput(benchmark):
    out = {}

    def measure():
        out["record"], out["warm"] = run_measurement()
        return out

    benchmark.pedantic(measure, rounds=1, iterations=1)
    check_against_direct(out["warm"])
    benchmark.extra_info.update(
        {k: v for k, v in out["record"].items() if k != "quadrants"})
    print("\n  " + json.dumps(out["record"], sort_keys=True))


def main():
    record, warm = run_measurement()
    check_against_direct(warm)
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
