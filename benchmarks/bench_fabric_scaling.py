"""Fabric scaling: one campaign sharded over 1, 2 and 3 service nodes.

For each fleet size N the bench boots N fresh in-process service nodes
(each a real content-addressed store + scheduler + asyncio HTTP server
on its own localhost socket), runs the *same* campaign through the
fabric coordinator (sliced batches, load-aware dispatch, work
stealing armed), and measures end-to-end wall-clock from submit to the
aggregated summary.  Fresh stores and a fresh coordinator journal per
fleet size mean every experiment is simulated exactly once per run -
this is pure scaling, not cache effects.

The bench also *asserts* the fabric's core guarantee: the aggregate
summary of every fleet size is bit-identical to a direct single-node
``Campaign.run`` of the same spec.  Federation may only change how
fast the answer arrives, never the answer.

There is deliberately no timing gate (CI machines are too noisy for
wall-clock assertions): CI runs a small version, enforces the
equalities, and uploads the record; the committed
``BENCH_fabric_scaling.json`` (regenerate with
``python benchmarks/bench_fabric_scaling.py``) documents the numbers
on a quiet machine.

A caveat the numbers must be read with: all N nodes share this
benchmark's Python process (and, in CI, typically one CPU core), so
the committed record documents *constant answers and federation
overhead*, not parallel speedup - the per-batch cost of re-planning
plus HTTP dispatch shows up directly.  On a real fleet (one host per
node) the same coordinator scales with node count; set
``ARGUS_FABRIC_WORKERS`` > 1 to give each node a process pool when
measuring on a multi-core box.

Size via ``ARGUS_FABRIC_EXPERIMENTS`` (default 150); per-node campaign
workers via ``ARGUS_FABRIC_WORKERS`` (default 1 = in-process); output
path via ``ARGUS_FABRIC_RECORD``.
"""

import json
import os
import shutil
import tempfile
import time

from repro.fabric import Topology, run_fabric_campaign
from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT
from repro.service import (CampaignSpec, JobScheduler, ResultStore,
                           ServiceServer)

EXPERIMENTS = int(os.environ.get("ARGUS_FABRIC_EXPERIMENTS", "150"))
WORKERS = int(os.environ.get("ARGUS_FABRIC_WORKERS", "1"))
SEED = 2007
FLEET_SIZES = (1, 2, 3)
RECORD_PATH = os.environ.get(
    "ARGUS_FABRIC_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_fabric_scaling.json"))

SPEC = {"experiments": EXPERIMENTS, "duration": "transient", "seed": SEED}


class Fleet:
    """N in-process service nodes over temp data dirs, wired for teardown."""

    def __init__(self, n):
        self.root = tempfile.mkdtemp(prefix="argus-bench-fabric-")
        self.nodes = []
        self.urls = []
        for index in range(n):
            data_dir = os.path.join(self.root, "node%d" % index)
            os.makedirs(data_dir)
            store = ResultStore(os.path.join(data_dir, "store.sqlite"))
            scheduler = JobScheduler(store, data_dir, workers=WORKERS)
            scheduler.start()
            server = ServiceServer(scheduler, port=0)
            host, port = server.start_in_thread()
            self.urls.append("http://%s:%d" % (host, port))
            self.nodes.append((server, scheduler, store))

    def close(self):
        for server, scheduler, store in self.nodes:
            server.stop()
            scheduler.shutdown(wait=False)
            store.close()
        shutil.rmtree(self.root, ignore_errors=True)


def _fractions(summary):
    return summary.fractions()


def run_measurement():
    """Returns the scaling record; asserts cross-fleet determinism."""
    runs = {}
    for n in FLEET_SIZES:
        fleet = Fleet(n)
        try:
            journal = os.path.join(fleet.root, "coordinator.jsonl")
            start = time.perf_counter()
            summaries, coordinator = run_fabric_campaign(
                dict(SPEC), Topology.from_urls(fleet.urls,
                                               probe_interval=0.2),
                journal, poll=0.02, steal_after=30.0)
            elapsed = time.perf_counter() - start
            status = coordinator.status()
            assert status["completed_experiments"] == EXPERIMENTS
            runs[n] = {"seconds": elapsed,
                       "summary": summaries["transient"],
                       "batches": status["batches"],
                       "dispatched": status["dispatched"],
                       "stolen": status["stolen"]}
        finally:
            fleet.close()

    # Determinism: every fleet size computed the same answer ...
    base = runs[FLEET_SIZES[0]]["summary"]
    for n in FLEET_SIZES[1:]:
        summary = runs[n]["summary"]
        assert _fractions(summary) == _fractions(base), n
        assert summary.checker_counts == base.checker_counts, n
    # ... and it is the single-node Campaign.run answer, bit for bit.
    spec = CampaignSpec.from_dict(SPEC)
    direct = spec.build_campaign().run(
        experiments=EXPERIMENTS, duration=TRANSIENT, workers=1)
    assert _fractions(base) == direct.fractions()
    assert base.checker_counts == dict(direct.checker_counts)

    one_node = runs[FLEET_SIZES[0]]["seconds"]
    record = {
        "experiments": EXPERIMENTS,
        "seed": SEED,
        "fleets": {
            str(n): {
                "seconds": round(runs[n]["seconds"], 3),
                "experiments_per_second":
                    round(EXPERIMENTS / runs[n]["seconds"], 2),
                "speedup_vs_1_node":
                    round(one_node / runs[n]["seconds"], 3),
                "batches": runs[n]["batches"],
                "dispatched": runs[n]["dispatched"],
                "stolen": runs[n]["stolen"],
            } for n in FLEET_SIZES
        },
        "deterministic": True,
        "fractions": _fractions(base),
    }
    return record


def test_fabric_scaling(benchmark):
    out = {}

    def measure():
        out["record"] = run_measurement()
        return out

    benchmark.pedantic(measure, rounds=1, iterations=1)
    record = out["record"]
    assert record["deterministic"]
    benchmark.extra_info.update(
        {"experiments": record["experiments"],
         **{"fleet_%s_seconds" % n: record["fleets"][n]["seconds"]
            for n in record["fleets"]}})
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    record = run_measurement()
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()


