"""Diagnosis accuracy: localization top-1/3/5 and repair success rates.

Two questions, measured per workload:

* **Localization** - inject a known fault family over and over
  (single-bit transients), hand only the resulting checker attributions
  to :func:`repro.diagnosis.localize.diagnose_records`, and ask where
  the true family lands in the ranking.  Reported as top-1/3/5 accuracy
  over the heaviest statically-detectable families
  (:func:`repro.diagnosis.evaluate.evaluate_localization`).
* **Repair** - corrupt the embedded text with storage upsets
  (single-bit, adjacent-pair, 3 random bits), run
  :func:`repro.diagnosis.repair.repair_program` with the header CRC,
  and count bit-identical restorations.

Both sweeps are seed-pinned and re-run to assert bit-identical results
(diagnosis must be deterministic to be trustworthy).  The committed
``BENCH_diagnosis_localization.json`` (regenerate with
``python benchmarks/bench_diagnosis_localization.py``) documents the
accuracy on the default budgets; the acceptance bars are top-3 >= 0.90
for localization and 1.0 single-bit repair on every workload.

Budgets via ``ARGUS_DIAGNOSIS_DETECTIONS`` (default 50 detections per
family), ``ARGUS_DIAGNOSIS_FAMILIES`` (default 10 families per
workload) and ``ARGUS_DIAGNOSIS_REPAIRS`` (default 48/32/16 scaled by
this factor, default 1.0); output via ``ARGUS_DIAGNOSIS_RECORD``.
"""

import json
import os
import random
import zlib

from repro.diagnosis import repair_program
from repro.diagnosis.evaluate import evaluate_family, evaluate_localization
from repro.diagnosis.localize import build_family_profiles, diagnose_records
from repro.diagnosis.repair import text_digest
from repro.faults.storage import corrupt_program, generate_storage_faults
from repro.workloads import iter_analysis_targets

BENCH_WORKLOADS = ("mpeg2", "rasta", "adpcm_enc")
SEED = 2007
DETECTIONS = int(os.environ.get("ARGUS_DIAGNOSIS_DETECTIONS", "50"))
FAMILIES = int(os.environ.get("ARGUS_DIAGNOSIS_FAMILIES", "10"))
REPAIR_SCALE = float(os.environ.get("ARGUS_DIAGNOSIS_REPAIRS", "1.0"))
RECORD_PATH = os.environ.get(
    "ARGUS_DIAGNOSIS_RECORD",
    os.path.join(os.path.dirname(__file__),
                 "BENCH_diagnosis_localization.json"))


def measure_localization(workloads=BENCH_WORKLOADS, seed=SEED):
    return evaluate_localization(
        workloads=workloads, seed=seed, detections_target=DETECTIONS,
        max_attempts=max(4 * DETECTIONS, 120), max_families=FAMILIES)


def measure_repair(workloads=BENCH_WORKLOADS, seed=SEED):
    """Storage-upset repair success per scenario, per workload."""
    sizes = {"single_bit": max(int(48 * REPAIR_SCALE), 4),
             "adjacent_pair": max(int(32 * REPAIR_SCALE), 4),
             "random_3bit": max(int(16 * REPAIR_SCALE), 2)}
    out = {}
    for name, workload in iter_analysis_targets(workloads):
        embedded = workload.build_embedded()
        program = embedded.program
        crc = text_digest(program.words)
        rng = random.Random(zlib.crc32(("repair/%s/%d" % (name, seed))
                                       .encode()))
        rows = {}
        for scenario, count in sizes.items():
            faults = generate_storage_faults(len(program.words), scenario,
                                             count, rng)
            repaired = ambiguous = 0
            for flips in faults:
                outcome = repair_program(corrupt_program(program, flips),
                                         entry_dcs=embedded.entry_dcs,
                                         text_crc=crc, oracle=False)
                if (outcome.status == "repaired"
                        and outcome.program.words == program.words):
                    repaired += 1
                elif outcome.status == "ambiguous":
                    ambiguous += 1
            rows[scenario] = {
                "trials": len(faults),
                "repaired": repaired,
                "ambiguous": ambiguous,
                "success": round(repaired / len(faults), 4),
            }
        out[name] = rows
    return out


def check_determinism(localization, seed=SEED):
    """Re-run one family's mini-campaign and re-rank: bit-identical."""
    from repro.analysis.coverage import build_static_coverage_map
    from repro.faults.campaign import Campaign

    ((name, workload),) = iter_analysis_targets(BENCH_WORKLOADS[:1])
    embedded = workload.build_embedded()
    campaign = Campaign(embedded=embedded, seed=seed)
    coverage_map = build_static_coverage_map(embedded=embedded,
                                             points=campaign.points)
    profiles = build_family_profiles(coverage_map)
    first_row = next(row for row in localization["workloads"][name]["rows"]
                     if row["detections"] > 0)
    from repro.diagnosis.evaluate import _family_seed

    rerun = evaluate_family(
        campaign, profiles, first_row["target"], first_row["index"],
        seed=_family_seed(name, first_row["target"], first_row["index"],
                          seed),
        detections_target=DETECTIONS, max_attempts=max(4 * DETECTIONS, 120))
    assert rerun == first_row, (
        "localization mini-campaign is not deterministic: %r != %r"
        % (rerun, first_row))
    # Ranking itself must also be pure.
    ranking = diagnose_records([], profiles=profiles)
    again = diagnose_records([], profiles=profiles)
    assert [(p.key, s) for p, s in ranking.entries] == \
        [(p.key, s) for p, s in again.entries]


def build_record(localization, repair):
    overall = localization["overall"]
    workloads = {}
    for name, summary in localization["workloads"].items():
        workloads[name] = {
            "families": summary["families"],
            "silent": summary["silent"],
            "top1_accuracy": summary["top1_accuracy"],
            "top3_accuracy": summary["top3_accuracy"],
            "top5_accuracy": summary["top5_accuracy"],
            "repair": repair[name],
        }
    return {
        "seed": SEED,
        "detections_per_family": DETECTIONS,
        "families_per_workload": FAMILIES,
        "localization_overall": {
            "families": overall["families"],
            "top1_accuracy": round(overall["top1_accuracy"], 4),
            "top3_accuracy": round(overall["top3_accuracy"], 4),
            "top5_accuracy": round(overall["top5_accuracy"], 4),
        },
        "workloads": workloads,
    }


def test_diagnosis_localization(benchmark):
    results = {}

    def measure():
        results["localization"] = measure_localization()
        results["repair"] = measure_repair()
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    check_determinism(results["localization"])
    record = build_record(results["localization"], results["repair"])
    assert record["localization_overall"]["top3_accuracy"] >= 0.90
    for name, row in record["workloads"].items():
        assert row["repair"]["single_bit"]["success"] == 1.0, name
    benchmark.extra_info.update(record["localization_overall"])
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    localization = measure_localization()
    repair = measure_repair()
    check_determinism(localization)
    record = build_record(localization, repair)
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
