"""Ablation (Sec. 4.2 extension): memory scrubbing rate vs detection
latency.

"Detection latency can be bounded by using cache and DRAM scrubbing,
but will still be much higher than Argus-1's detection latencies for
other errors."  This sweep plants storage-parity errors at random words
and measures how many scrub activations pass before the walker finds
them, across scrub rates, against the analytic worst-case bound.
"""

import random

from repro.argus.errors import MemoryCheckError
from repro.argus.scrubber import Scrubber, scrub_latency_bound
from repro.mem.checked import CheckedMemory

RESIDENT_WORDS = 256
RATES = (1, 4, 16, 64)
TRIALS = 60


def _measure(rate, trials=TRIALS, seed=77):
    rng = random.Random(seed)
    latencies = []
    for _ in range(trials):
        memory = CheckedMemory()
        for i in range(RESIDENT_WORDS):
            memory.store_word(0x2000 + 4 * i, rng.getrandbits(32))
        victim = 0x2000 + 4 * rng.randrange(RESIDENT_WORDS)
        scrubber = Scrubber(memory, words_per_activation=rate)
        # Advance the cursor to a random phase before the error lands.
        for _ in range(rng.randrange(0, RESIDENT_WORDS // rate + 1)):
            scrubber.activate()
        memory.corrupt_parity(victim)
        activations = 0
        try:
            while True:
                scrubber.activate()
                activations += 1
        except MemoryCheckError:
            latencies.append(activations)
    return latencies


def test_scrubbing_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {rate: _measure(rate) for rate in RATES},
        rounds=1, iterations=1)
    print("\n  %6s %16s %16s %18s" % (
        "rate", "mean activations", "max activations", "worst-case bound"))
    for rate, latencies in results.items():
        bound = scrub_latency_bound(RESIDENT_WORDS, rate, 1)
        mean = sum(latencies) / len(latencies)
        print("  %6d %16.1f %16d %18d" % (rate, mean, max(latencies), bound))
        benchmark.extra_info["rate=%d" % rate] = round(mean, 1)
        # The analytic bound holds for every trial...
        assert max(latencies) <= bound
    # ...and faster scrubbing shortens detection proportionally.
    assert sum(results[1]) / len(results[1]) > 8 * sum(results[64]) / len(results[64])
