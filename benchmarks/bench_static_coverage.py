"""Static coverage audit: runtime + static-vs-empirical agreement.

Two numbers the PR's acceptance bar cares about, recorded as JSON:

* how long the purely analytic audit takes (building the full
  :class:`~repro.analysis.coverage.StaticCoverageMap` plus the
  ARG014-ARG017 lint pass) versus one empirical campaign of the same
  scope - the audit classifies every point, the campaign samples;
* the differential gate's verdict on a seed-pinned campaign: every
  sampled experiment's empirical outcome must be compatible with its
  static classification (zero disagreements), and the per-outcome
  empirical statistics are recorded so drifts show up in review.

There is deliberately no wall-clock gate (CI machines are noisy); CI
enforces zero disagreements and full classification, and uploads the
record.  The committed ``BENCH_static_coverage.json`` (regenerate with
``python benchmarks/bench_static_coverage.py``) documents a quiet-
machine run.

Size via ``ARGUS_STATIC_COVERAGE_EXPERIMENTS`` (default 500), output
path via ``ARGUS_STATIC_COVERAGE_RECORD``.
"""

import json
import os
import time

from repro.analysis.coverage import (
    audit_coverage_map,
    build_static_coverage_map,
    differential_audit,
)
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT

EXPERIMENTS = int(os.environ.get("ARGUS_STATIC_COVERAGE_EXPERIMENTS", "500"))
SEED = 2007
RECORD_PATH = os.environ.get(
    "ARGUS_STATIC_COVERAGE_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_static_coverage.json"))


def run_audit_and_campaign(experiments=EXPERIMENTS, seed=SEED):
    """Build the static map, audit it, run the campaign, cross-check."""
    campaign = Campaign(seed=seed)

    start = time.perf_counter()
    coverage_map = build_static_coverage_map(campaign.embedded,
                                             points=campaign.points)
    report = audit_coverage_map(coverage_map)
    audit_seconds = time.perf_counter() - start

    start = time.perf_counter()
    per_duration = {}
    defects = []
    agreement = {}
    for duration in (TRANSIENT, PERMANENT):
        summary = campaign.run(experiments=experiments // 2,
                               duration=duration)
        per_duration[duration] = summary
        defects.extend(differential_audit(summary.results, coverage_map))
        tally = {}
        for result in summary.results:
            entry = coverage_map.lookup(result.spec)
            key = "%s/%s" % (entry.outcome, result.quadrant)
            tally[key] = tally.get(key, 0) + 1
        agreement[duration] = dict(sorted(tally.items()))
    campaign_seconds = time.perf_counter() - start

    return {
        "campaign": campaign,
        "coverage_map": coverage_map,
        "report": report,
        "per_duration": per_duration,
        "defects": defects,
        "agreement": agreement,
        "audit_seconds": audit_seconds,
        "campaign_seconds": campaign_seconds,
    }


def check_acceptance(results):
    """The PR's acceptance bar, enforced wherever the bench runs."""
    assert results["report"].ok, results["report"].render_text()
    assert not results["coverage_map"].unknown()
    assert results["defects"] == [], "\n".join(
        d.format() for d in results["defects"])


def build_record(results):
    coverage_map = results["coverage_map"]
    total = sum(len(s.results) for s in results["per_duration"].values())
    return {
        "experiments": total,
        "seed": SEED,
        "points_classified": len(coverage_map),
        "outcome_counts": coverage_map.outcome_counts(),
        "outcome_weights": {k: round(v, 5) for k, v in
                            coverage_map.outcome_weights().items()},
        "audit_errors": len(results["report"].errors),
        "disagreements": len(results["defects"]),
        "agreement": results["agreement"],
        "audit_seconds": round(results["audit_seconds"], 3),
        "campaign_seconds": round(results["campaign_seconds"], 3),
        "audit_points_per_second": round(
            len(coverage_map) / results["audit_seconds"], 1),
    }


def test_static_coverage_agreement(benchmark):
    results = {}

    def measure():
        results.update(run_audit_and_campaign())
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    check_acceptance(results)

    record = build_record(results)
    benchmark.extra_info.update(
        {k: v for k, v in record.items()
         if k not in ("outcome_counts", "outcome_weights", "agreement")})
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    results = run_audit_and_campaign()
    check_acceptance(results)
    record = build_record(results)
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
