"""Ablation (Sec. 3.2.2): the bound on basic-block size.

"To bound the time between control flow checks, Argus-1 also requires a
fixed limit on the size of basic blocks."  Smaller limits mean more
splits (more Signature terminators -> higher overhead) but tighter
worst-case detection latency; this sweep quantifies the trade-off.
"""

from repro.cpu import FastCore
from repro.workloads import WORKLOADS

LIMITS = (8, 16, 24, 48)
_BENCHES = ("adpcm_enc", "gsm", "pegwit")


def _sweep():
    results = {}
    for limit in LIMITS:
        static = []
        dynamic = []
        largest_block = 0
        for name in _BENCHES:
            workload = WORKLOADS[name]
            base = FastCore(workload.build_base()).run()
            embedded = workload.build_embedded(max_block=limit)
            run = FastCore(embedded.program).run()
            static.append(embedded.static_overhead)
            dynamic.append((run.instructions - base.instructions) / base.instructions)
            largest_block = max(largest_block,
                                max(b.num_insns for b in embedded.blocks.values()))
        count = len(_BENCHES)
        results[limit] = (sum(static) / count, sum(dynamic) / count, largest_block)
    return results


def test_block_size_ablation(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\n  %8s %9s %9s %18s" % ("limit", "static%", "dyn%", "largest block"))
    for limit, (static, dynamic, largest) in results.items():
        print("  %8d %8.2f%% %8.2f%% %18d" % (
            limit, 100 * static, 100 * dynamic, largest))
        benchmark.extra_info["limit=%d" % limit] = round(static, 4)

    # The latency bound holds: no block exceeds limit + inserted sigs.
    for limit, (*_ignore, largest) in results.items():
        assert largest <= limit + 3
    # Cost monotonicity: tighter limits cost more static overhead.
    assert results[8][0] > results[24][0] >= results[48][0]
