"""Analytic-hybrid campaign throughput, full simulation vs ``hybrid=True``.

Runs the same seed-pinned transient campaign twice per workload - once
fully simulated and once hybrid (axes the masking timeline proves are
synthesized, only the genuinely uncertain ones execute) - and asserts:

* the aggregates are **bit-identical** (quadrant fractions, checker
  attribution): synthesized axes are theorems, so hybrid campaigns have
  zero statistical tolerance to tune;
* the differential audit over every hybrid result against the static
  coverage map reports **zero** disagreements;
* zero spot-check failures (a failure raises
  :class:`~repro.faults.campaign.HybridSoundnessError` mid-run).

There is deliberately no wall-clock gate in the pytest path: CI
machines are too noisy to assert timing ratios, so CI enforces only the
equalities above and uploads the record as an artifact.  The committed
``BENCH_hybrid_campaign.json`` (regenerate with
``python benchmarks/bench_hybrid_campaign.py``, which *does* enforce
the >=3x effective-throughput acceptance bar) documents the speedup on
a quiet machine.

Size via ``ARGUS_HYBRID_EXPERIMENTS`` (default 120), output path via
``ARGUS_HYBRID_RECORD``, acceptance bar via ``ARGUS_HYBRID_MIN_SPEEDUP``
(default 3.0; CI sets 1.0 because its wall clock cannot be trusted).
"""

import json
import os
import time

from repro.analysis.coverage import (build_static_coverage_map,
                                     differential_audit,
                                     differential_summary)
from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT
from repro.workloads import WORKLOADS

EXPERIMENTS = int(os.environ.get("ARGUS_HYBRID_EXPERIMENTS", "120"))
SEED = 2007
BENCHES = ("adpcm_enc", "g721_dec")
RECORD_PATH = os.environ.get(
    "ARGUS_HYBRID_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_hybrid_campaign.json"))


def run_comparison(name, experiments=EXPERIMENTS, seed=SEED):
    """Run one workload's campaign full then hybrid; returns
    {label: (seconds, summary, campaign)}.  Timing includes the golden
    run (and, for hybrid, the timeline build): the hybrid number pays
    for its own analysis."""
    out = {}
    embedded = WORKLOADS[name].build_embedded()
    for label, hybrid in (("full", False), ("hybrid", True)):
        campaign = Campaign(embedded=embedded, seed=seed, hybrid=hybrid)
        start = time.perf_counter()
        summary = campaign.run(experiments=experiments, duration=TRANSIENT)
        out[label] = (time.perf_counter() - start, summary, campaign)
    return out


def check_equality(results):
    """Hybrid aggregates must equal full simulation, exactly."""
    _, full, _ = results["full"]
    _, hybrid, _ = results["hybrid"]
    assert hybrid.total == full.total
    assert hybrid.fractions() == full.fractions()
    assert hybrid.checker_counts == full.checker_counts
    for quadrant, (lo, hi) in hybrid.quadrant_intervals().items():
        assert lo == hi == getattr(full, quadrant)


def check_differential(results):
    """Zero disagreements between hybrid results and the static map."""
    _, hybrid, campaign = results["hybrid"]
    coverage_map = build_static_coverage_map(campaign.embedded,
                                             points=campaign.points)
    disagreements = differential_audit(hybrid.results, coverage_map)
    assert not disagreements, [d.format() for d in disagreements]
    return differential_summary(hybrid.results, coverage_map,
                                disagreements=disagreements)


def build_record(name, results, diff):
    full_seconds, full, _ = results["full"]
    hybrid_seconds, hybrid, campaign = results["hybrid"]
    return {
        "experiments": full.total,
        "golden_instructions": campaign.golden_length,
        "full_seconds": round(full_seconds, 3),
        "hybrid_seconds": round(hybrid_seconds, 3),
        "full_throughput": round(full.total / full_seconds, 2),
        "hybrid_throughput": round(hybrid.total / hybrid_seconds, 2),
        "speedup": round(full_seconds / hybrid_seconds, 3),
        "executed": hybrid.executed,
        "synthesized_full": hybrid.synthesized_full,
        "synthesized_partial": hybrid.synthesized_partial,
        "spot_checks": hybrid.spot_checks,
        "runs_saved": hybrid.runs_saved,
        "disagreements": diff["disagreements"],
        "quadrants": full.fractions(),
    }


def run_all(experiments=EXPERIMENTS):
    record = {"seed": SEED, "experiments_per_workload": experiments,
              "workloads": {}}
    for name in BENCHES:
        results = run_comparison(name, experiments=experiments)
        check_equality(results)
        diff = check_differential(results)
        record["workloads"][name] = build_record(name, results, diff)
    return record


def test_hybrid_campaign(benchmark):
    record = {}

    def measure():
        record.update(run_all())
        return record

    benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, row in record["workloads"].items():
        assert row["disagreements"] == 0
        assert row["synthesized_full"] + row["synthesized_partial"] > 0
        benchmark.extra_info["%s_speedup" % name] = row["speedup"]
        benchmark.extra_info["%s_runs_saved" % name] = row["runs_saved"]
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    record = run_all()
    min_speedup = float(os.environ.get("ARGUS_HYBRID_MIN_SPEEDUP", "3.0"))
    for name, row in record["workloads"].items():
        # The acceptance bar: >=3x effective experiments/s, measured on
        # a quiet machine with the analysis cost charged to hybrid.  CI
        # lowers the bar via the env knob (its wall clock is noise) and
        # relies on the equality + differential asserts instead.
        assert row["speedup"] >= min_speedup, (name, row["speedup"])
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
