"""Figure 7: runtime overhead with the 2-way set-associative I-cache.

Paper: 3.2% average, with visibly lower variation than Figure 6 - the
2-way cache is "less sensitive to re-alignments than the direct-mapped
cache".  Shape: similar average to the 1-way run but with a tighter
spread, verified by comparing the two standard deviations directly.
"""

import statistics

from repro.eval import paper
from repro.workloads import ALL_WORKLOADS
from repro.workloads.runner import measure_suite


def test_fig7_runtime_overhead_2way(benchmark):
    two_way = benchmark.pedantic(
        measure_suite, args=(ALL_WORKLOADS,), kwargs={"ways": 2},
        rounds=1, iterations=1)
    one_way = measure_suite(ALL_WORKLOADS, ways=1)

    overheads_2w = [m.runtime_overhead for m in two_way]
    overheads_1w = [m.runtime_overhead for m in one_way]
    print("\n  %-10s %9s %9s" % ("bench", "2-way%", "1-way%"))
    for m2, m1 in zip(two_way, one_way):
        print("  %-10s %+9.2f %+9.2f" % (
            m2.name, 100 * m2.runtime_overhead, 100 * m1.runtime_overhead))
        benchmark.extra_info[m2.name] = round(m2.runtime_overhead, 4)
    average = sum(overheads_2w) / len(overheads_2w)
    spread_2w = statistics.stdev(overheads_2w)
    spread_1w = statistics.stdev(overheads_1w)
    benchmark.extra_info["average"] = round(average, 4)
    benchmark.extra_info["stdev_2way"] = round(spread_2w, 4)
    benchmark.extra_info["stdev_1way"] = round(spread_1w, 4)
    benchmark.extra_info["paper_average"] = paper.FIG7_AVG_RUNTIME_OVERHEAD_2WAY
    print("  average %+.2f%% (paper %.1f%%); stdev %.2f%% vs %.2f%% (1-way)"
          % (100 * average, 100 * paper.FIG7_AVG_RUNTIME_OVERHEAD_2WAY,
             100 * spread_2w, 100 * spread_1w))

    assert 0.005 < average < 0.06  # paper: 3.2%
    assert spread_2w < spread_1w  # the paper's associativity claim
    assert all(value > -0.02 for value in overheads_2w)  # no wild swings
