"""Sec. 4.1's methodology claim, measured.

"It would have been difficult to test Argus-1 using benchmark code,
because many benchmarks have frequently executed inner loops that use
only a handful of registers and a small subset of the instruction set."
The measurement shows exactly why: against a narrow-loop benchmark, the
apparent coverage collapses - faults in registers the loop never reads
corrupt architectural state (so they count as unmasked) but can never be
caught (the parity is only checked at a read), inflating the "silent"
bucket.  The stress test keeps every register live, so its coverage
number measures the checkers, not the workload's register usage.
"""

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT

EXPERIMENTS = 220


def _short_rasta():
    """The rasta kernel at campaign-friendly length (fewer frames)."""
    from repro.toolchain import embed_program
    from repro.workloads import rasta as rasta_mod
    from repro.workloads.gen import data_words, word_directive

    frames = 6
    source = rasta_mod._SOURCE % {
        "frames": frames,
        "bands": rasta_mod.BANDS,
        "energies": word_directive(
            data_words(0x7A57A, rasta_mod.BANDS * frames, 0, 1 << 20)),
        "hist_bytes": 16 * rasta_mod.BANDS,
        "out_bytes": 4 * rasta_mod.BANDS * frames,
    }
    return embed_program(source)


def _run_both():
    stress = Campaign(seed=55).run(experiments=EXPERIMENTS,
                                   duration=TRANSIENT)
    benchmark_campaign = Campaign(embedded=_short_rasta(), seed=55)
    bench = benchmark_campaign.run(experiments=EXPERIMENTS,
                                   duration=TRANSIENT)
    return stress, bench


def test_stress_vs_benchmark_campaign(benchmark):
    stress, bench = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    stress_masked = (stress.fractions()["masked_undetected"]
                     + stress.fractions()["masked_detected"])
    bench_masked = (bench.fractions()["masked_undetected"]
                    + bench.fractions()["masked_detected"])
    stress_silent = stress.fractions()["unmasked_undetected"]
    bench_silent = bench.fractions()["unmasked_undetected"]
    print("\n  %-12s %8s %10s %10s" % ("workload", "masked", "silent",
                                       "coverage"))
    print("  %-12s %7.1f%% %9.1f%% %9.1f%%" % (
        "stress", 100 * stress_masked, 100 * stress_silent,
        100 * stress.unmasked_coverage))
    print("  %-12s %7.1f%% %9.1f%% %9.1f%%" % (
        "rasta", 100 * bench_masked, 100 * bench_silent,
        100 * bench.unmasked_coverage))
    benchmark.extra_info["stress_coverage"] = round(stress.unmasked_coverage, 4)
    benchmark.extra_info["benchmark_coverage"] = round(bench.unmasked_coverage, 4)

    # The stress test measures the checkers; the benchmark measures its
    # own register usage: its apparent coverage collapses via dormant-
    # register "silent" faults that never touch any output.
    assert stress.unmasked_coverage > 0.94
    assert bench.unmasked_coverage < stress.unmasked_coverage - 0.05
    assert bench_silent > stress_silent + 0.03
