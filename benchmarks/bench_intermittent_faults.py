"""Extension: intermittent faults - the third error class.

The paper evaluates transient and permanent errors; marginal hardware
that fails in recurring bursts (intermittents) sits between them.  This
benchmark runs the same weighted campaign for all three durations and
checks the expected ordering: intermittents recur like permanents, so
Argus's coverage of unmasked intermittents matches the permanent row
within a few points, while their masked share sits at or above the
transient row (bursts can fall between uses of the faulty unit).
"""

from repro.faults.campaign import Campaign
from repro.faults.model import INTERMITTENT, PERMANENT, TRANSIENT

EXPERIMENTS = 250


def _run_all():
    campaign = Campaign(seed=404)
    return {
        duration: campaign.run(experiments=EXPERIMENTS, duration=duration)
        for duration in (TRANSIENT, INTERMITTENT, PERMANENT)
    }


def test_intermittent_fault_class(benchmark):
    summaries = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print("\n  %-13s %8s %8s %8s %8s %10s" % (
        "duration", "silent", "unm-det", "mask-und", "DME", "coverage"))
    for duration, summary in summaries.items():
        fractions = summary.fractions()
        print("  %-13s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %9.1f%%" % (
            duration,
            100 * fractions["unmasked_undetected"],
            100 * fractions["unmasked_detected"],
            100 * fractions["masked_undetected"],
            100 * fractions["masked_detected"],
            100 * summary.unmasked_coverage))
        benchmark.extra_info[duration + "_coverage"] = round(
            summary.unmasked_coverage, 4)

    intermittent = summaries[INTERMITTENT]
    permanent = summaries[PERMANENT]
    # Coverage of unmasked intermittents tracks the permanent row.
    assert intermittent.unmasked_coverage > 0.90
    assert abs(intermittent.unmasked_coverage
               - permanent.unmasked_coverage) < 0.08
    # Silent corruption stays rare for the new class too.
    assert intermittent.fractions()["unmasked_undetected"] < 0.04
