"""Campaign throughput scaling: serial vs multi-worker execution engine.

Runs the same seed-pinned transient campaign through the planned
execution engine at 1, 2 and 4 workers, asserts the results are
bit-identical (same quadrant fractions, same checker attribution), and
records a JSON line so the bench trajectory tracks the speedup over
time.  The >=2x speedup expectation only applies on machines with at
least 4 CPUs; on smaller boxes the record is still emitted but the
speedup is informational.

The acceleration dimensions compose: every worker count also runs
with golden-run checkpointing disabled and with the batched
(structure-of-arrays) engine enabled, so the record separates the
warm-start speedup (checkpoints on vs off), the batching speedup
(batched vs scalar, same worker count) and the process-parallel
speedup - and proves every path classifies identically.

Size via ``ARGUS_SCALING_EXPERIMENTS`` (default 400, the acceptance
campaign size).
"""

import json
import os
import time

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT

EXPERIMENTS = int(os.environ.get("ARGUS_SCALING_EXPERIMENTS", "400"))
WORKER_COUNTS = (1, 2, 4)
SEED = 2007


def _run(workers, use_checkpoints=True, batched=False):
    campaign = Campaign(seed=SEED, use_checkpoints=use_checkpoints,
                        batched=batched)
    start = time.perf_counter()
    summary = campaign.run(experiments=EXPERIMENTS, duration=TRANSIENT,
                           workers=workers, keep_results=False)
    return time.perf_counter() - start, summary


def test_campaign_scaling(benchmark):
    results = {}
    cold = {}
    batched = {}

    def measure():
        for workers in WORKER_COUNTS:
            results[workers] = _run(workers)
            cold[workers] = _run(workers, use_checkpoints=False)
            batched[workers] = _run(workers, batched=True)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)

    serial_seconds, serial_summary = results[1]
    record = {
        "experiments": EXPERIMENTS,
        "cpus": os.cpu_count() or 1,
        "serial_seconds": round(serial_seconds, 3),
        "serial_throughput": round(EXPERIMENTS / serial_seconds, 2),
        "speedup": {},
        "checkpoint_speedup": {},
        "batched_speedup": {},
    }
    for workers in WORKER_COUNTS:
        seconds, summary = results[workers]
        cold_seconds, cold_summary = cold[workers]
        batched_seconds, batched_summary = batched[workers]
        # determinism: any worker count - and any engine mode - must be
        # bit-identical to serial
        assert summary.fractions() == serial_summary.fractions()
        assert summary.checker_counts == serial_summary.checker_counts
        assert cold_summary.fractions() == serial_summary.fractions()
        assert cold_summary.checker_counts == serial_summary.checker_counts
        assert batched_summary.fractions() == serial_summary.fractions()
        assert batched_summary.checker_counts == serial_summary.checker_counts
        record["speedup"][str(workers)] = round(serial_seconds / seconds, 3)
        record["checkpoint_speedup"][str(workers)] = round(
            cold_seconds / seconds, 3)
        record["batched_speedup"][str(workers)] = round(
            seconds / batched_seconds, 3)
        benchmark.extra_info["speedup_%dw" % workers] = record["speedup"][str(workers)]
    benchmark.extra_info.update(
        {k: v for k, v in record.items()
         if k not in ("speedup", "checkpoint_speedup", "batched_speedup")})

    print("\n  " + json.dumps(record, sort_keys=True))
    if record["cpus"] >= 4:
        assert record["speedup"]["4"] >= 2.0, (
            "parallel engine must reach 2x on a 4-core machine: %r" % record)
