"""Figure 5: dynamic instruction count overhead per benchmark.

Paper: 3.5% average dynamic overhead, against 7% average *static*
overhead - inner loops are ALU-heavy and embed DCSs in unused bits,
while prologues/epilogues (loads, stores, immediates) need explicit
Signature NOPs but execute rarely.  Shape: dynamic < static on average,
per-benchmark values spanning roughly 0-7%.
"""

from repro.eval import paper
from repro.workloads import ALL_WORKLOADS
from repro.workloads.runner import measure_suite


def test_fig5_dynamic_instruction_overhead(benchmark):
    measurements = benchmark.pedantic(
        measure_suite, args=(ALL_WORKLOADS,), kwargs={"ways": 1},
        rounds=1, iterations=1)
    dynamic = [m.dynamic_overhead for m in measurements]
    static = [m.static_overhead for m in measurements]
    print("\n  %-10s %8s %8s" % ("bench", "dyn%", "static%"))
    for m in measurements:
        print("  %-10s %8.2f %8.2f" % (
            m.name, 100 * m.dynamic_overhead, 100 * m.static_overhead))
        benchmark.extra_info[m.name] = round(m.dynamic_overhead, 4)
    avg_dynamic = sum(dynamic) / len(dynamic)
    avg_static = sum(static) / len(static)
    benchmark.extra_info["average_dynamic"] = round(avg_dynamic, 4)
    benchmark.extra_info["average_static"] = round(avg_static, 4)
    benchmark.extra_info["paper_average_dynamic"] = paper.FIG5_AVG_DYNAMIC_OVERHEAD
    print("  average dynamic %.2f%% (paper %.1f%%), static %.2f%% (paper %.0f%%)"
          % (100 * avg_dynamic, 100 * paper.FIG5_AVG_DYNAMIC_OVERHEAD,
             100 * avg_static, 100 * paper.STATIC_OVERHEAD_AVG))

    assert 0.01 < avg_dynamic < 0.06  # paper: 3.5%
    assert 0.03 < avg_static < 0.11  # paper: 7%
    assert avg_dynamic < avg_static  # the unused-bit optimization works
    assert all(0.0 <= value < 0.12 for value in dynamic)
