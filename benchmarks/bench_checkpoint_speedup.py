"""Checkpoint-accelerated campaign wall-clock speedup, checkpoints on vs off.

Runs the same seed-pinned transient campaign twice - once cold (every
experiment replays the workload from instruction 0) and once warm
(experiments restore the nearest golden checkpoint at or before their
injection point) - asserts the classifications are *bit-identical*
per experiment (quadrant, checker attribution, detection latencies),
and records the speedup as JSON.

There is deliberately no timing gate: CI machines are too noisy to
assert wall-clock ratios, so CI only enforces the classification match
and uploads the record as an artifact.  The committed
``BENCH_checkpoint_speedup.json`` (regenerate with
``python benchmarks/bench_checkpoint_speedup.py``) documents the
speedup on a quiet machine; the acceptance bar is >=1.5x at the
default 500-experiment size.

Size via ``ARGUS_CHECKPOINT_EXPERIMENTS`` (default 500), output path
via ``ARGUS_CHECKPOINT_RECORD``.
"""

import json
import os
import time

from repro.faults.campaign import Campaign
from repro.faults.model import TRANSIENT

EXPERIMENTS = int(os.environ.get("ARGUS_CHECKPOINT_EXPERIMENTS", "500"))
SEED = 2007
RECORD_PATH = os.environ.get(
    "ARGUS_CHECKPOINT_RECORD",
    os.path.join(os.path.dirname(__file__), "BENCH_checkpoint_speedup.json"))


def _result_key(result):
    return (result.quadrant, result.checker, result.detail, result.inject_at,
            result.activated_at, result.hung, result.latency_instructions,
            result.latency_cycles, result.latency_blocks)


def run_comparison(experiments=EXPERIMENTS, seed=SEED):
    """Run the campaign cold then warm; returns {label: (seconds, summary,
    campaign)}.  Timing includes the golden run so the warm number pays
    for building its own checkpoint set."""
    out = {}
    for label, use_checkpoints in (("off", False), ("on", True)):
        campaign = Campaign(seed=seed, use_checkpoints=use_checkpoints)
        start = time.perf_counter()
        summary = campaign.run(experiments=experiments, duration=TRANSIENT)
        out[label] = (time.perf_counter() - start, summary, campaign)
    return out


def check_classification(results):
    """Warm and cold runs must be indistinguishable, per experiment."""
    _, cold, _ = results["off"]
    _, warm, _ = results["on"]
    assert warm.fractions() == cold.fractions()
    assert warm.checker_counts == cold.checker_counts
    assert ([_result_key(r) for r in warm.results]
            == [_result_key(r) for r in cold.results])


def build_record(results):
    cold_seconds, cold, _ = results["off"]
    warm_seconds, _, campaign = results["on"]
    store = campaign.checkpoints()
    return {
        "experiments": EXPERIMENTS,
        "seed": SEED,
        "golden_instructions": campaign.golden_length,
        "checkpoints": len(store) if store is not None else 0,
        "checkpoint_interval": store.interval if store is not None else None,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_throughput": round(EXPERIMENTS / cold_seconds, 2),
        "warm_throughput": round(EXPERIMENTS / warm_seconds, 2),
        "speedup": round(cold_seconds / warm_seconds, 3),
        "quadrants": cold.fractions(),
    }


def test_checkpoint_speedup(benchmark):
    results = {}

    def measure():
        results.update(run_comparison())
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    check_classification(results)

    record = build_record(results)
    benchmark.extra_info.update(
        {k: v for k, v in record.items() if k != "quadrants"})
    print("\n  " + json.dumps(record, sort_keys=True))


def main():
    results = run_comparison()
    check_classification(results)
    record = build_record(results)
    with open(RECORD_PATH, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
