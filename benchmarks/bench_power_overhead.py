"""Extension: the power analysis the paper defers to future work.

Sec. 4.3: "The low area overhead of Argus-1 suggests that it has a
fairly low power overhead, but we do not have reliable power analysis
at this time."  The activity-based model quantifies the conjecture:
each checker switches only when its host unit does, so the dynamic
power overhead must land at or below the ~17% area overhead - and be
workload-dependent through the instruction mix.
"""

from repro.area.components import core_overhead
from repro.area.power import estimate_suite
from repro.workloads import ALL_WORKLOADS


def test_power_overhead(benchmark):
    estimates, average = benchmark.pedantic(
        estimate_suite, args=(ALL_WORKLOADS,), rounds=1, iterations=1)
    print("\n  %-10s %10s %8s %8s" % ("bench", "power ovh", "mul%", "mem%"))
    for estimate in estimates:
        print("  %-10s %9.1f%% %7.1f%% %7.1f%%" % (
            estimate.workload, 100 * estimate.overhead,
            100 * estimate.class_fractions["muldiv"],
            100 * estimate.class_fractions["mem"]))
        benchmark.extra_info[estimate.workload] = round(estimate.overhead, 4)
    benchmark.extra_info["average"] = round(average, 4)
    area = core_overhead()
    print("  average power overhead %.1f%% (core area overhead %.1f%%)"
          % (100 * average, 100 * area))

    assert 0.08 < average < 0.22  # "fairly low", same ballpark as area
    assert average < area * 1.2  # checkers gated by their host units
    spread = max(e.overhead for e in estimates) - min(
        e.overhead for e in estimates)
    assert spread > 0.005  # workload-dependent, not a constant
