"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper; the
measured numbers land in ``benchmark.extra_info`` (visible in
``--benchmark-verbose`` / JSON output) and are printed for eyeballing
with ``-s``.  Campaign sizes default to a few hundred experiments so the
whole suite runs in minutes; the full-scale run lives in
``python -m repro.eval.report``.
"""

import pytest

from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT

#: Experiments per error type for the benchmark-sized campaigns.
BENCH_EXPERIMENTS = 400


@pytest.fixture(scope="session")
def campaign():
    """One shared stress-test campaign (golden trace computed once)."""
    return Campaign(seed=2007)


@pytest.fixture(scope="session")
def campaign_summaries(campaign):
    """Transient + permanent campaign results, shared by several benches."""
    return {
        TRANSIENT: campaign.run(experiments=BENCH_EXPERIMENTS, duration=TRANSIENT),
        PERMANENT: campaign.run(experiments=BENCH_EXPERIMENTS, duration=PERMANENT),
    }
