"""Ablation (Sec. 4.2): EDC parity vs SEC-DED ECC for stored data.

"Long latencies can be circumvented by using error correcting codes
(ECC) instead of simple error detecting codes."  This ablation plants
random storage faults into both protection schemes and compares their
outcomes and costs:

* parity EDC detects every single-bit error but needs a recovery
  rollback; double-bit errors escape entirely;
* SEC-DED corrects every single-bit error in place (latency ~0, no
  rollback) and *detects* double-bit errors that parity would miss;
* the price: 7 extra bits per 32-bit word vs parity's 1.
"""

import random

from repro.mem.checked import CheckedMemory
from repro.mem.ecc import EccMemory

TRIALS = 400


def _run_trial(rng):
    address = rng.randrange(0, 1 << 10) << 2
    value = rng.getrandbits(32)
    double = rng.random() < 0.3
    bits = rng.sample(range(32), 2 if double else 1)

    parity_mem = CheckedMemory()
    parity_mem.store_word(address, value)
    for bit in bits:
        parity_mem.corrupt_stored_bit(address, bit)
    parity_event = parity_mem.load_word(address)

    ecc_mem = EccMemory()
    ecc_mem.store_word(address, value)
    for bit in bits:
        ecc_mem.corrupt_stored_bit(address, bit)
    ecc_event = ecc_mem.load_word(address)

    return {
        "double": double,
        "parity_detected": not parity_event.ok,
        "parity_silent": parity_event.ok and parity_event.value != value,
        "ecc_corrected": ecc_event.corrected and ecc_event.value == value,
        "ecc_detected": ecc_event.detected_uncorrectable,
        "ecc_silent": (not ecc_event.corrected
                       and not ecc_event.detected_uncorrectable
                       and ecc_event.value != value),
    }


def _campaign(trials=TRIALS, seed=13):
    rng = random.Random(seed)
    tallies = {"single": 0, "double": 0, "parity_detected": 0,
               "parity_silent": 0, "ecc_corrected": 0, "ecc_detected": 0,
               "ecc_silent": 0}
    for _ in range(trials):
        outcome = _run_trial(rng)
        tallies["double" if outcome["double"] else "single"] += 1
        for key in ("parity_detected", "parity_silent", "ecc_corrected",
                    "ecc_detected", "ecc_silent"):
            tallies[key] += outcome[key]
    return tallies


def test_edc_vs_ecc_ablation(benchmark):
    tallies = benchmark.pedantic(_campaign, rounds=1, iterations=1)
    total = tallies["single"] + tallies["double"]
    print("\n  %d storage faults (%d single, %d double)" % (
        total, tallies["single"], tallies["double"]))
    print("  parity EDC : %4d detected (rollback needed), %3d SILENT"
          % (tallies["parity_detected"], tallies["parity_silent"]))
    print("  SEC-DED ECC: %4d corrected in place, %3d detected, %3d silent"
          % (tallies["ecc_corrected"], tallies["ecc_detected"],
             tallies["ecc_silent"]))
    print("  storage cost: parity 1 bit/word; SEC-DED 7 bits/word")
    for key in ("parity_detected", "parity_silent", "ecc_corrected",
                "ecc_detected", "ecc_silent"):
        benchmark.extra_info[key] = tallies[key]

    # Parity: all singles detected; all doubles silent.
    assert tallies["parity_detected"] == tallies["single"]
    assert tallies["parity_silent"] == tallies["double"]
    # ECC: all singles corrected with zero rollbacks; all doubles detected.
    assert tallies["ecc_corrected"] == tallies["single"]
    assert tallies["ecc_detected"] == tallies["double"]
    assert tallies["ecc_silent"] == 0
