"""Table 1: error-injection quadrants (transient and permanent).

Paper (Table 1): transient  0.76 / 37.4 / 38.2 / 23.7 %,
                 permanent  0.46 / 37.6 / 38.2 / 23.7 %
(silent / unmasked-detected / masked-undetected / DME, of all injections).
Shape requirements: silent well under ~2%, unmasked coverage >90%, and
roughly 60% of injections masked.
"""

from repro.eval import paper
from repro.faults.campaign import Campaign
from repro.faults.model import PERMANENT, TRANSIENT


def _run_row(duration, experiments=150, seed=11):
    campaign = Campaign(seed=seed)
    return campaign.run(experiments=experiments, duration=duration)


def _record(benchmark, summary, reference):
    fractions = summary.fractions()
    for key, value in fractions.items():
        benchmark.extra_info[key] = round(value, 4)
        benchmark.extra_info["paper_" + key] = reference[key]
    benchmark.extra_info["unmasked_coverage"] = round(summary.unmasked_coverage, 4)
    print("\n  measured:", {k: "%.2f%%" % (100 * v) for k, v in fractions.items()})
    print("  paper:   ", {k: "%.2f%%" % (100 * v) for k, v in reference.items()})
    assert fractions["unmasked_undetected"] < 0.04
    assert summary.unmasked_coverage > 0.90
    assert 0.45 < fractions["masked_undetected"] + fractions["masked_detected"] < 0.75


def test_table1_transient_row(benchmark):
    summary = benchmark.pedantic(
        _run_row, args=(TRANSIENT,), rounds=1, iterations=1)
    _record(benchmark, summary, paper.TABLE1["transient"])


def test_table1_permanent_row(benchmark):
    summary = benchmark.pedantic(
        _run_row, args=(PERMANENT,), rounds=1, iterations=1)
    _record(benchmark, summary, paper.TABLE1["permanent"])
